"""Tests for Algorithm 2 (run_single_estimate): passes, unbiasedness, accuracy."""

from __future__ import annotations

import random

import pytest

from repro.analysis.variance import empirical_moments
from repro.core import ExactAssigner, ParameterPlan
from repro.core.estimator import run_single_estimate
from repro.generators import (
    barabasi_albert_graph,
    book_graph,
    cycle_graph,
    triangulated_grid_graph,
    wheel_graph,
)
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream, SpaceMeter
from repro.streams.transforms import shuffled


def plan_for(graph, kappa, epsilon=0.25, t_guess=None, mode="practical"):
    t = t_guess if t_guess is not None else max(1, count_triangles(graph))
    return ParameterPlan.build(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        kappa=kappa,
        t_guess=float(t),
        epsilon=epsilon,
        mode=mode,
    )


def exact_assigner_factory(graph):
    def factory(plan, rng, meter):
        return ExactAssigner(graph)

    return factory


class TestMechanics:
    def test_stream_length_mismatch_rejected(self, wheel10):
        plan = plan_for(wheel10, 3)
        wrong = InMemoryEdgeStream([(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="plan was built for"):
            run_single_estimate(wrong, plan, random.Random(0))

    def test_six_passes_with_streaming_assigner(self, wheel10):
        plan = plan_for(wheel10, 3)
        stream = InMemoryEdgeStream.from_graph(wheel10)
        result = run_single_estimate(stream, plan, random.Random(0))
        # 4 core passes + 2 assignment passes when candidates were found.
        assert result.passes_used == 6 if result.distinct_candidate_triangles else 4

    def test_four_passes_on_triangle_free(self):
        graph = cycle_graph(30)
        plan = plan_for(graph, 2, t_guess=10.0)
        stream = InMemoryEdgeStream.from_graph(graph)
        result = run_single_estimate(stream, plan, random.Random(0))
        assert result.passes_used == 4
        assert result.estimate == 0.0

    def test_diagnostics_consistency(self, wheel10):
        plan = plan_for(wheel10, 3)
        stream = InMemoryEdgeStream.from_graph(wheel10)
        result = run_single_estimate(stream, plan, random.Random(1))
        assert result.r == plan.r
        assert result.ell >= 8
        assert result.d_r >= result.r  # every d_e >= 1
        assert 0 <= result.assigned_hits <= result.wedges_closed <= result.ell
        assert result.space_words_peak > 0

    def test_deterministic_given_seed(self, grid4):
        plan = plan_for(grid4, 3)
        stream = InMemoryEdgeStream.from_graph(grid4)
        a = run_single_estimate(stream, plan, random.Random(7))
        b = run_single_estimate(stream, plan, random.Random(7))
        assert a.estimate == b.estimate

    def test_meter_used_when_supplied(self, grid4):
        plan = plan_for(grid4, 3)
        stream = InMemoryEdgeStream.from_graph(grid4)
        meter = SpaceMeter()
        run_single_estimate(stream, plan, random.Random(0), meter=meter)
        assert meter.peak_words > 0
        assert "R" in meter.peak_breakdown()


class TestUnbiasednessWithExactAssigner:
    """With the exact min-t_e assigner, E[X] = T exactly (no unassigned
    triangles, no estimation error in IsAssigned)."""

    @pytest.mark.parametrize(
        "graph_factory,kappa",
        [
            (lambda: wheel_graph(80), 3),
            (lambda: book_graph(50), 2),
            (lambda: triangulated_grid_graph(8, 8), 3),
        ],
    )
    def test_mean_over_runs_close_to_t(self, graph_factory, kappa):
        graph = graph_factory()
        t = count_triangles(graph)
        plan = plan_for(graph, kappa)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(13)))
        factory = exact_assigner_factory(graph)
        estimates = [
            run_single_estimate(stream, plan, random.Random(seed), assigner_factory=factory).estimate
            for seed in range(30)
        ]
        moments = empirical_moments(estimates)
        standard_error = moments.std / (len(estimates) ** 0.5)
        assert abs(moments.mean - t) <= 4 * standard_error + 0.05 * t


class TestAccuracyEndToEnd:
    def test_wheel_accuracy(self):
        graph = wheel_graph(400)
        t = count_triangles(graph)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(4)))
        estimates = [
            run_single_estimate(stream, plan, random.Random(seed)).estimate for seed in range(7)
        ]
        med = sorted(estimates)[3]
        assert abs(med - t) / t < 0.3

    def test_ba_accuracy(self):
        graph = barabasi_albert_graph(250, 5, random.Random(2))
        t = count_triangles(graph)
        plan = plan_for(graph, 5)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(4)))
        estimates = [
            run_single_estimate(stream, plan, random.Random(seed)).estimate for seed in range(7)
        ]
        med = sorted(estimates)[3]
        assert abs(med - t) / t < 0.35

    def test_adversarial_stream_order(self):
        # Heavy edges last: pass-1 uniform sampling must not care.
        from repro.streams.transforms import adversarial_heavy_edge_last_order

        graph = wheel_graph(300)
        t = count_triangles(graph)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph, adversarial_heavy_edge_last_order(graph))
        estimates = [
            run_single_estimate(stream, plan, random.Random(seed)).estimate for seed in range(7)
        ]
        med = sorted(estimates)[3]
        assert abs(med - t) / t < 0.3
