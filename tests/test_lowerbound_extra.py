"""Additional Theorem 6.3 checks: parameter ranges and stream behaviour."""

from __future__ import annotations

import random

import pytest

from repro.graph import count_triangles, degeneracy
from repro.lowerbound import (
    build_reduction_graph,
    instance_parameters,
    sample_disjointness,
)
from repro.lowerbound.reduction import reduction_edges
from repro.streams import InMemoryEdgeStream


class TestParameterSpectrum:
    @pytest.mark.parametrize("kappa,r", [(2, 2), (2, 4), (3, 2), (5, 3), (4, 4)])
    def test_planted_count_is_kappa_to_r(self, kappa, r):
        inst = instance_parameters(kappa=kappa, exponent_r=r, universe=9)
        assert inst.planted_triangles == kappa ** r

    @pytest.mark.parametrize("kappa,r", [(2, 3), (3, 3), (4, 2)])
    def test_single_intersection_exact_triangle_count(self, kappa, r):
        # Build an instance with exactly one intersecting index by hand.
        from repro.lowerbound.disjointness import DisjointnessInstance

        inst = instance_parameters(kappa=kappa, exponent_r=r, universe=6)
        disj = DisjointnessInstance(
            universe=6, alice=frozenset({0, 1}), bob=frozenset({1, 2})
        )
        graph = build_reduction_graph(inst, disj)
        assert count_triangles(graph) == kappa ** r

    def test_triangles_scale_with_intersections(self):
        from repro.lowerbound.disjointness import DisjointnessInstance

        inst = instance_parameters(kappa=3, exponent_r=3, universe=6)
        two_hits = DisjointnessInstance(
            universe=6, alice=frozenset({0, 1}), bob=frozenset({0, 1})
        )
        graph = build_reduction_graph(inst, two_hits)
        assert count_triangles(graph) == 2 * 27


class TestStreamIntegration:
    def test_reduction_edges_form_valid_stream(self):
        inst = instance_parameters(kappa=3, exponent_r=3, universe=9)
        disj = sample_disjointness(9, 3, intersecting=True, rng=random.Random(1))
        edges = list(reduction_edges(inst, disj))
        stream = InMemoryEdgeStream(edges)  # validates: simple, no dupes
        assert len(stream) == len(edges)

    def test_exact_counter_agrees_on_stream(self):
        from repro.core.exact_reference import ExactStreamingCounter

        inst = instance_parameters(kappa=3, exponent_r=2, universe=9)
        disj = sample_disjointness(9, 3, intersecting=True, rng=random.Random(2))
        graph = build_reduction_graph(inst, disj)
        stream = InMemoryEdgeStream(list(reduction_edges(inst, disj)))
        assert ExactStreamingCounter().count(stream).triangles == count_triangles(graph)

    def test_degeneracy_promise_2p_always_valid(self):
        # The game hands the estimator kappa = 2p; verify across samples.
        inst = instance_parameters(kappa=4, exponent_r=3, universe=9)
        for seed in range(4):
            for intersecting in (False, True):
                disj = sample_disjointness(9, 3, intersecting, random.Random(seed))
                graph = build_reduction_graph(inst, disj)
                assert degeneracy(graph) <= 2 * inst.p
