"""Tests for repro.streams.space.SpaceMeter."""

from __future__ import annotations

import pytest

from repro.errors import SpaceBudgetExceeded
from repro.streams import SpaceMeter


class TestAllocation:
    def test_tracks_current_and_peak(self):
        meter = SpaceMeter()
        meter.allocate(10)
        meter.allocate(5)
        assert meter.current_words == 15
        assert meter.peak_words == 15
        meter.release(12)
        assert meter.current_words == 3
        assert meter.peak_words == 15

    def test_negative_allocate_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().allocate(-1)

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().release(-1)

    def test_over_release_rejected(self):
        meter = SpaceMeter()
        meter.allocate(3, "a")
        with pytest.raises(ValueError, match="holding"):
            meter.release(4, "a")

    def test_release_wrong_category_rejected(self):
        meter = SpaceMeter()
        meter.allocate(3, "a")
        with pytest.raises(ValueError):
            meter.release(1, "b")

    def test_zero_allocation_is_noop(self):
        meter = SpaceMeter()
        meter.allocate(0)
        assert meter.peak_words == 0


class TestCategories:
    def test_peak_breakdown(self):
        meter = SpaceMeter()
        meter.allocate(10, "reservoir")
        meter.allocate(4, "degrees")
        meter.release(6, "reservoir")
        meter.allocate(1, "reservoir")
        assert meter.peak_breakdown() == {"reservoir": 10, "degrees": 4}

    def test_set_category_charges_delta(self):
        meter = SpaceMeter()
        meter.set_category(7, "table")
        assert meter.current_words == 7
        meter.set_category(3, "table")
        assert meter.current_words == 3
        meter.set_category(9, "table")
        assert meter.peak_words == 9


class TestBudget:
    def test_budget_enforced(self):
        meter = SpaceMeter(budget_words=10)
        meter.allocate(10)
        with pytest.raises(SpaceBudgetExceeded, match="11 > 10"):
            meter.allocate(1)

    def test_budget_respects_release(self):
        meter = SpaceMeter(budget_words=10)
        meter.allocate(10)
        meter.release(5)
        meter.allocate(5)  # back at the cap: fine
        assert meter.current_words == 10

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter(budget_words=-1)

    def test_budget_property(self):
        assert SpaceMeter(budget_words=42).budget_words == 42
        assert SpaceMeter().budget_words is None
