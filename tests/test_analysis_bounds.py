"""Tests for repro.analysis.bounds: Table 1 formulas and the crossover."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    crossover_t_for_kappa,
    paper_bound,
    predicted_bounds,
    space_bound,
)
from repro.analysis.bounds import dominance_table
from repro.errors import ParameterError


class TestSpaceBound:
    def test_paper_formula(self):
        assert space_bound("paper", 100, 1000, 50.0, kappa=4) == 1000 * 4 / 50.0

    def test_paper_requires_kappa(self):
        with pytest.raises(ParameterError, match="kappa"):
            space_bound("paper", 100, 1000, 50.0)

    def test_buriol_formula(self):
        assert space_bound("buriol", 100, 1000, 50.0) == 1000 * 100 / 50.0

    def test_mvv_neighbor_formula(self):
        assert space_bound("mvv-neighbor", 100, 1000, 50.0) == 1000 ** 1.5 / 50.0

    def test_sqrt_t_formulas_agree(self):
        a = space_bound("cormode-jowhari", 100, 1000, 64.0)
        b = space_bound("mvv-heavy-light", 100, 1000, 64.0)
        assert a == b == 1000 / 8.0

    def test_pavan_requires_max_degree(self):
        with pytest.raises(ParameterError):
            space_bound("pavan", 100, 1000, 50.0)
        assert space_bound("pavan", 100, 1000, 50.0, max_degree=20) == 1000 * 20 / 50.0

    def test_pagh_tsourakakis(self):
        value = space_bound("pagh-tsourakakis", 100, 1000, 100.0, max_te=5)
        assert value == 1000 * 5 / 100.0 + 1000 / 10.0

    def test_kane(self):
        assert space_bound("kane", 100, 1000, 50.0) == 1000 ** 3 / 2500.0

    def test_bar_yossef(self):
        assert space_bound("bar-yossef", 10, 100, 50.0) == (100 * 10 / 50.0) ** 2

    def test_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown bound"):
            space_bound("alien", 10, 100, 5.0)

    def test_nonpositive_inputs(self):
        with pytest.raises(ParameterError):
            space_bound("paper", 10, 100, 0.0, kappa=2)

    def test_paper_bound_shortcut(self):
        assert paper_bound(1000, 50.0, 4) == 80.0


class TestPredictedBounds:
    def test_all_rows_present_paper_last(self):
        rows = predicted_bounds(100, 1000, 500.0, kappa=3, max_degree=30, max_te=10)
        assert len(rows) == 10
        assert rows[-1].name == "paper"
        assert all(r.value > 0 for r in rows)

    def test_paper_beats_worst_case_when_t_large(self):
        # T >> kappa^2: m*kappa/T < min(m^{3/2}/T, m/sqrt(T)).
        rows = {r.name: r.value for r in predicted_bounds(
            10_000, 50_000, 100_000.0, kappa=5, max_degree=200, max_te=60
        )}
        assert rows["paper"] < rows["mvv-neighbor"]
        assert rows["paper"] < rows["mvv-heavy-light"]


class TestCrossover:
    def test_crossover_is_kappa_squared(self):
        assert crossover_t_for_kappa(7) == 49.0

    def test_crossover_validation(self):
        with pytest.raises(ParameterError):
            crossover_t_for_kappa(0)

    def test_exact_tie_at_crossover(self):
        kappa, m, n = 6, 5000, 1000
        t_star = crossover_t_for_kappa(kappa)
        ours = space_bound("paper", n, m, t_star, kappa=kappa)
        theirs = space_bound("mvv-heavy-light", n, m, t_star)
        assert ours == pytest.approx(theirs)

    def test_dominance_flips_at_crossover(self):
        kappa, m, n = 6, 50_000, 10_000
        t_star = crossover_t_for_kappa(kappa)
        rows = dominance_table(n, m, kappa, [t_star / 4, 4 * t_star])
        assert rows[0]["paper_wins"] == 0.0
        assert rows[1]["paper_wins"] == 1.0

    def test_dominance_table_fields(self):
        rows = dominance_table(100, 1000, 3, [10.0, 100.0])
        for row in rows:
            assert row["best_prior"] == min(row["m32_over_t"], row["m_over_sqrt_t"])
            assert math.isclose(row["paper"], 1000 * 3 / row["T"])


class TestLowerBounds:
    def test_paper_lower_bound_formula(self):
        from repro.analysis.bounds import lower_bound

        assert lower_bound("paper-lb", 100, 1000, 50.0, kappa=4) == 80.0

    def test_paper_lb_requires_kappa(self):
        from repro.analysis.bounds import lower_bound

        with pytest.raises(ParameterError):
            lower_bound("paper-lb", 100, 1000, 50.0)

    def test_kutzkov_pagh_matches_kane_upper(self):
        # The dynamic one-pass bound is tight: Omega(m^3/T^2) vs O(m^3/T^2).
        from repro.analysis.bounds import lower_bound

        lb = lower_bound("kutzkov-pagh", 100, 1000, 50.0)
        ub = space_bound("kane", 100, 1000, 50.0)
        assert lb == ub

    def test_unknown_name(self):
        from repro.analysis.bounds import lower_bound

        with pytest.raises(ParameterError, match="unknown lower bound"):
            lower_bound("nope", 10, 10, 1.0)

    def test_all_rows_paper_last(self):
        from repro.analysis.bounds import lower_bound_rows

        rows = lower_bound_rows(1000, 5000, 500.0, kappa=4)
        assert len(rows) == 9
        assert rows[-1].name == "paper-lb"
        assert all(r.value > 0 for r in rows)

    def test_paper_upper_meets_paper_lower(self):
        # Theorem 1.2 vs Theorem 1.3: the same leading term - the paper's
        # "effectively optimal" claim.
        from repro.analysis.bounds import lower_bound

        ub = space_bound("paper", 1000, 5000, 500.0, kappa=4)
        lb = lower_bound("paper-lb", 1000, 5000, 500.0, kappa=4)
        assert ub == lb

    def test_bera_chakrabarti_is_min(self):
        from repro.analysis.bounds import lower_bound

        import math

        m, t = 5000.0, 500.0
        value = lower_bound("bera-chakrabarti", 1000, 5000, 500.0)
        assert value == min(m / math.sqrt(t), m ** 1.5 / t)
