"""Shared fixtures: small graphs with known closed-form statistics."""

from __future__ import annotations

import random

import pytest

from repro.generators import (
    barabasi_albert_graph,
    book_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    friendship_graph,
    triangulated_grid_graph,
    wheel_graph,
)
from repro.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """K_3: the smallest graph with a triangle."""
    return complete_graph(3)


@pytest.fixture
def k4() -> Graph:
    return complete_graph(4)


@pytest.fixture
def wheel10() -> Graph:
    """Wheel on 10 vertices: m=18, T=9, kappa=3."""
    return wheel_graph(10)


@pytest.fixture
def book8() -> Graph:
    """Book with 8 pages: spine edge carries all 8 triangles."""
    return book_graph(8)


@pytest.fixture
def friendship6() -> Graph:
    """Friendship graph with 6 blades: T=6, all t_e=1."""
    return friendship_graph(6)


@pytest.fixture
def grid4() -> Graph:
    """Triangulated 4x4 grid: planar, T=18, kappa=3."""
    return triangulated_grid_graph(4, 4)


@pytest.fixture
def c6() -> Graph:
    """Triangle-free 6-cycle."""
    return cycle_graph(6)


@pytest.fixture
def ba_small() -> Graph:
    """Deterministic BA graph (n=120, k=4): kappa <= 4 certified."""
    return barabasi_albert_graph(120, 4, random.Random(12345))


@pytest.fixture
def er_small() -> Graph:
    """Deterministic sparse ER graph (n=100, m=300)."""
    return erdos_renyi_gnm(100, 300, random.Random(999))


@pytest.fixture
def all_fixture_graphs(triangle, k4, wheel10, book8, friendship6, grid4, c6, ba_small, er_small):
    """The full roster, for cross-cutting invariant tests."""
    return {
        "triangle": triangle,
        "k4": k4,
        "wheel10": wheel10,
        "book8": book8,
        "friendship6": friendship6,
        "grid4": grid4,
        "c6": c6,
        "ba_small": ba_small,
        "er_small": er_small,
    }
