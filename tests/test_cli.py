"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.generators import wheel_graph
from repro.io import write_edgelist


@pytest.fixture
def wheel_file(tmp_path):
    path = tmp_path / "wheel.txt"
    write_edgelist(wheel_graph(60), path)
    return str(path)


class TestStats:
    def test_stats_output(self, wheel_file, capsys):
        assert main(["stats", wheel_file]) == 0
        out = capsys.readouterr().out
        assert "kappa" in out
        assert "59" in out  # T = n - 1

    def test_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.txt")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro stats:")
        assert len(err.strip().splitlines()) == 1  # one line, no traceback


class TestExact:
    def test_exact_output(self, wheel_file, capsys):
        assert main(["exact", wheel_file]) == 0
        out = capsys.readouterr().out
        assert "triangles: 59" in out
        assert "passes:    1" in out


class TestEstimate:
    def test_estimate_runs(self, wheel_file, capsys):
        code = main(
            ["estimate", wheel_file, "--kappa", "3", "--seed", "1", "--repetitions", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate:" in out
        assert "plan:" in out

    def test_kappa_required(self, wheel_file):
        with pytest.raises(SystemExit):
            main(["estimate", wheel_file])

    def test_fuse_flag_same_estimate_fewer_sweeps(self, wheel_file, capsys):
        base = ["estimate", wheel_file, "--kappa", "3", "--seed", "1",
                "--repetitions", "3"]
        assert main(base + ["--no-fuse"]) == 0
        unfused = capsys.readouterr().out
        assert main(base + ["--fuse"]) == 0
        fused = capsys.readouterr().out

        def field(out, key):
            return next(line for line in out.splitlines() if line.startswith(key))

        assert field(fused, "estimate:") == field(unfused, "estimate:")
        assert field(fused, "passes:") == field(unfused, "passes:")
        sweeps = lambda out: int(field(out, "sweeps:").split()[1])  # noqa: E731
        assert sweeps(fused) < sweeps(unfused)

    def test_speculate_depth_flag_same_estimate_fewer_sweeps(self, tmp_path, capsys):
        # A multi-round instance (no t_hint) is where deeper speculation
        # pays; the wheel accepts too early to show a depth-3-vs-2 gap.
        import random

        from repro.generators import barabasi_albert_graph

        path = tmp_path / "ba.txt"
        write_edgelist(barabasi_albert_graph(400, 5, random.Random(1)), path)
        base = ["estimate", str(path), "--kappa", "5", "--seed", "7",
                "--repetitions", "3", "--speculate"]
        assert main(base + ["--speculate-depth", "2"]) == 0
        pair = capsys.readouterr().out
        assert main(base + ["--speculate-depth", "3"]) == 0
        deep = capsys.readouterr().out

        def field(out, key):
            return next(line for line in out.splitlines() if line.startswith(key))

        assert field(deep, "estimate:") == field(pair, "estimate:")
        assert field(deep, "rounds:") == field(pair, "rounds:")
        assert field(deep, "passes:") == field(pair, "passes:")
        sweeps = lambda out: int(field(out, "sweeps:").split()[1])  # noqa: E731
        assert sweeps(deep) <= sweeps(pair)

    def test_speculate_depth_validation(self, wheel_file):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError, match="speculate_depth"):
            main(["estimate", wheel_file, "--kappa", "3", "--speculate-depth", "1"])

    def test_explicit_depth_implies_speculation(self, tmp_path, capsys):
        # An explicit --speculate-depth without --speculate must engage the
        # speculative driver (fewer sweeps), not be silently inert; an
        # explicit --no-speculate still wins.
        import random

        from repro.generators import barabasi_albert_graph

        path = tmp_path / "ba.txt"
        write_edgelist(barabasi_albert_graph(400, 5, random.Random(1)), path)
        base = ["estimate", str(path), "--kappa", "5", "--seed", "7",
                "--repetitions", "3"]

        def sweeps(out):
            line = next(l for l in out.splitlines() if l.startswith("sweeps:"))
            return int(line.split()[1])

        assert main(base + ["--no-speculate", "--speculate-depth", "3"]) == 0
        sequential = capsys.readouterr().out
        assert main(base + ["--speculate-depth", "3"]) == 0
        implied = capsys.readouterr().out
        assert sweeps(implied) < sweeps(sequential)

    def test_degradation_reported(self, wheel_file, capsys):
        # A persistent injected fault with a zero retry budget forces the
        # recovery ladder to drop a tier; the CLI must surface that as a
        # degraded: line while still printing a complete estimate.
        base = ["estimate", wheel_file, "--kappa", "3", "--seed", "1",
                "--repetitions", "3"]
        assert main(base + ["--faults", "file.read@0", "--max-retries", "0"]) == 0
        out = capsys.readouterr().out
        assert "estimate:" in out
        assert "degraded:" in out
        assert "prefetch->sync" in out
        assert "file.read" in out

    def test_clean_run_reports_no_degradation(self, wheel_file, capsys):
        assert main(["estimate", wheel_file, "--kappa", "3", "--seed", "1",
                     "--repetitions", "3", "--max-retries", "2"]) == 0
        assert "degraded:" not in capsys.readouterr().out


class TestBounds:
    def test_bounds_table(self, wheel_file, capsys):
        assert main(["bounds", wheel_file]) == 0
        out = capsys.readouterr().out
        assert "m*kappa/T" in out
        assert "Thm 1.2" in out

    def test_triangle_free_message(self, tmp_path, capsys):
        path = tmp_path / "path.txt"
        path.write_text("0 1\n1 2\n")
        assert main(["bounds", str(path)]) == 0
        assert "triangle-free" in capsys.readouterr().out


class TestGenerate:
    def test_generate_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "ba.txt"
        code = main(
            ["generate", "ba", "--out", str(out_file), "--scale", "tiny", "--seed", "2"]
        )
        assert code == 0
        assert out_file.exists()
        assert "kappa <=" in capsys.readouterr().out
        # generated file is consumable by the other commands
        assert main(["exact", str(out_file)]) == 0

    def test_generate_unknown_family(self, tmp_path, capsys):
        code = main(["generate", "galaxy", "--out", str(tmp_path / "x.txt")])
        assert code == 2
        assert "available" in capsys.readouterr().err

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", "wheel", "--out", str(a), "--scale", "tiny", "--seed", "5"])
        main(["generate", "wheel", "--out", str(b), "--scale", "tiny", "--seed", "5"])
        assert a.read_text() == b.read_text()


class TestConvertAndTapeInfo:
    def test_convert_writes_tape_and_fingerprint(self, wheel_file, tmp_path, capsys):
        out = str(tmp_path / "wheel.etape")
        assert main(["convert", wheel_file, "--out", out]) == 0
        printed = capsys.readouterr().out
        assert "wrote 118 edges" in printed
        assert "fingerprint:" in printed
        from repro.streams import is_tape

        assert is_tape(out)

    def test_convert_default_output_path(self, wheel_file, capsys):
        assert main(["convert", wheel_file]) == 0
        from repro.streams import is_tape

        assert is_tape(wheel_file + ".etape")

    def test_convert_validate_round_trip(self, wheel_file, tmp_path, capsys):
        out = str(tmp_path / "wheel.etape")
        assert main(["convert", wheel_file, "--out", out, "--validate"]) == 0
        assert "round trip exact" in capsys.readouterr().out

    def test_tape_info_dumps_header(self, wheel_file, tmp_path, capsys):
        out = str(tmp_path / "wheel.etape")
        main(["convert", wheel_file, "--out", out])
        capsys.readouterr()
        assert main(["tape-info", out]) == 0
        printed = capsys.readouterr().out
        assert "edges (m)" in printed
        assert "118" in printed
        assert "fingerprint" in printed

    def test_estimate_and_exact_accept_tape(self, wheel_file, tmp_path, capsys):
        """The headline invariant at the CLI surface: the same seed on the
        text file and its tape prints the identical estimate."""
        out = str(tmp_path / "wheel.etape")
        main(["convert", wheel_file, "--out", out])
        capsys.readouterr()
        base = ["--kappa", "3", "--seed", "1", "--repetitions", "3"]
        assert main(["estimate", wheel_file] + base) == 0
        text_out = capsys.readouterr().out
        assert main(["estimate", out] + base) == 0
        tape_out = capsys.readouterr().out
        text_line = [l for l in text_out.splitlines() if "estimate:" in l]
        tape_line = [l for l in tape_out.splitlines() if "estimate:" in l]
        assert text_line == tape_line
        assert main(["exact", out]) == 0
        assert "triangles: 59" in capsys.readouterr().out

    def test_tape_info_rejects_text_file(self, wheel_file, capsys):
        # A text file is not a tape: typed TapeFormatError, reported as a
        # one-line exit-2 failure rather than a traceback.
        assert main(["tape-info", wheel_file]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro tape-info:")
        assert len(err.strip().splitlines()) == 1


class TestSnapshotCommands:
    def _result_lines(self, out):
        return [
            line
            for line in out.splitlines()
            if line.startswith(("estimate:", "rounds:", "passes:"))
        ]

    def _checkpointed(self, wheel_file, tmp_path, capsys):
        """Run plain then checkpointed; return (result lines, dir, names)."""
        base = ["estimate", wheel_file, "--kappa", "3", "--seed", "1",
                "--repetitions", "3"]
        assert main(base) == 0
        plain = self._result_lines(capsys.readouterr().out)
        ckdir = tmp_path / "ck"
        assert main(base + ["--checkpoint-dir", str(ckdir), "--snapshot-keep", "64"]) == 0
        checkpointed = self._result_lines(capsys.readouterr().out)
        assert checkpointed == plain
        snaps = sorted(p.name for p in ckdir.glob("*.esnap"))
        assert snaps and snaps[0] == "snap-r000000.esnap"
        return plain, ckdir, snaps

    def test_checkpointed_estimate_writes_snapshots_identically(
        self, wheel_file, tmp_path, capsys
    ):
        self._checkpointed(wheel_file, tmp_path, capsys)

    def test_resume_reproduces_the_estimate(self, wheel_file, tmp_path, capsys):
        plain, ckdir, snaps = self._checkpointed(wheel_file, tmp_path, capsys)
        assert main(["resume", str(ckdir / snaps[0]), wheel_file]) == 0
        out = capsys.readouterr().out
        assert "resuming:  round 0" in out
        assert self._result_lines(out) == plain
        # A directory source resumes from the newest snapshot.
        assert main(["resume", str(ckdir), wheel_file]) == 0
        assert self._result_lines(capsys.readouterr().out) == plain

    def test_snapshot_info_summarizes_state(self, wheel_file, tmp_path, capsys):
        _plain, ckdir, _snaps = self._checkpointed(wheel_file, tmp_path, capsys)
        assert main(["snapshot-info", str(ckdir)]) == 0
        out = capsys.readouterr().out
        for field in ("next round", "rounds committed", "kappa", "seed",
                      "config hash", "fingerprint"):
            assert field in out

    def test_resume_refuses_a_different_input(self, wheel_file, tmp_path, capsys):
        from repro.generators import wheel_graph
        from repro.io import write_edgelist

        _plain, ckdir, _snaps = self._checkpointed(wheel_file, tmp_path, capsys)
        other = tmp_path / "other.txt"
        write_edgelist(wheel_graph(61), other)
        assert main(["resume", str(ckdir), str(other)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro resume:")
        assert "fingerprint mismatch" in err


class TestTypedErrors:
    """Expected input failures exit 2 with one stderr line, never a traceback."""

    def _assert_one_line_failure(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"repro {argv[0]}:"), err
        assert len(err.strip().splitlines()) == 1, err
        assert "Traceback" not in err

    def test_stats_missing_input(self, tmp_path, capsys):
        self._assert_one_line_failure(["stats", str(tmp_path / "nope.txt")], capsys)

    def test_exact_missing_input(self, tmp_path, capsys):
        self._assert_one_line_failure(["exact", str(tmp_path / "nope.txt")], capsys)

    def test_estimate_missing_input(self, tmp_path, capsys):
        self._assert_one_line_failure(
            ["estimate", str(tmp_path / "nope.txt"), "--kappa", "3"], capsys
        )

    def test_bounds_missing_input(self, tmp_path, capsys):
        self._assert_one_line_failure(["bounds", str(tmp_path / "nope.txt")], capsys)

    def test_convert_missing_input(self, tmp_path, capsys):
        self._assert_one_line_failure(
            ["convert", str(tmp_path / "nope.txt"), "--out", str(tmp_path / "o.etape")],
            capsys,
        )

    def test_tape_info_missing_input(self, tmp_path, capsys):
        self._assert_one_line_failure(["tape-info", str(tmp_path / "nope.etape")], capsys)

    def test_resume_missing_snapshot(self, tmp_path, wheel_file, capsys):
        self._assert_one_line_failure(
            ["resume", str(tmp_path / "nope.esnap"), wheel_file], capsys
        )

    def test_snapshot_info_missing_input(self, tmp_path, capsys):
        self._assert_one_line_failure(
            ["snapshot-info", str(tmp_path / "nope.esnap")], capsys
        )

    def test_serve_without_endpoint(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_SOCKET", raising=False)
        monkeypatch.delenv("REPRO_SERVE_PORT", raising=False)
        self._assert_one_line_failure(["serve"], capsys)

    def test_corrupt_tape_is_a_one_line_failure(self, tmp_path, capsys):
        bad = tmp_path / "bad.etape"
        bad.write_bytes(b"ETAPE???" + b"\x00" * 8)  # bad magic/truncated header
        self._assert_one_line_failure(["tape-info", str(bad)], capsys)

    def test_parameter_errors_still_raise(self, wheel_file):
        # Infeasible parameters are caller bugs, not input failures: the
        # typed handler must not swallow ParameterError (see
        # test_speculate_depth_validation).
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            main(["estimate", wheel_file, "--kappa", "3", "--epsilon", "2.0"])


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])
