"""Additional distributional checks on the sampling substrate.

These complement the per-module tests with the *joint* statistical facts
the estimators rely on: i.i.d. position sampling equals reservoir
semantics, weighted draws compose with uniform draws the way the Section 4
derivation assumes, and median-of-means actually achieves its configured
robustness on heavy-tailed inputs.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.sampling import CumulativeSampler, median_of_means
from repro.sampling.combine import groups_for_failure_probability


class TestPositionSamplingEquivalence:
    def test_iid_positions_are_uniform_with_replacement(self):
        # The estimators draw r i.i.d. positions instead of running r
        # reservoirs; verify the marginal is uniform and repeats occur at
        # the birthday rate.
        rng = random.Random(0)
        m, r, trials = 20, 5, 3000
        marginal = Counter()
        repeat_count = 0
        for _ in range(trials):
            draws = [rng.randrange(m) for _ in range(r)]
            marginal.update(draws)
            if len(set(draws)) < r:
                repeat_count += 1
        total = trials * r
        for position in range(m):
            assert abs(marginal[position] / total - 1 / m) < 0.02
        # P(some repeat) = 1 - prod (1 - i/m) for i < r ~ 0.42 for m=20, r=5.
        expected_repeat = 1.0
        for i in range(r):
            expected_repeat *= (m - i) / m
        expected_repeat = 1 - expected_repeat
        assert abs(repeat_count / trials - expected_repeat) < 0.05


class TestTwoStageSampling:
    def test_degree_weighted_then_uniform_neighbor_hits_wedges_uniformly(self):
        # Section 4's core identity: picking an edge ~ d_e then a uniform
        # member of N(e) makes every (edge, neighbor) wedge equally likely.
        # Simulate on a toy weight profile.
        degrees = {0: 4, 1: 2, 2: 2}  # "edges" with d_e values
        sampler = CumulativeSampler([float(d) for d in degrees.values()])
        rng = random.Random(1)
        trials = 12000
        wedge_hits = Counter()
        keys = list(degrees)
        for _ in range(trials):
            e = keys[sampler.draw(rng)]
            neighbor = rng.randrange(degrees[e])
            wedge_hits[(e, neighbor)] += 1
        total_wedges = sum(degrees.values())
        for wedge, hits in wedge_hits.items():
            assert abs(hits / trials - 1 / total_wedges) < 0.02, wedge
        assert len(wedge_hits) == total_wedges


class TestMedianOfMeansRobustness:
    def test_heavy_tail_robustness(self):
        # Inputs: mostly 1.0, occasionally 1000 (a 1% heavy tail).  The
        # plain mean is wrecked; median-of-means with enough groups is not.
        rng = random.Random(2)
        groups = groups_for_failure_probability(0.1)
        per_group = 40
        failures = 0
        trials = 200
        for _ in range(trials):
            values = [
                1000.0 if rng.random() < 0.01 else 1.0
                for _ in range(groups * per_group)
            ]
            estimate = median_of_means(values, groups)
            if abs(estimate - 1.0) > 15.0:
                failures += 1
        assert failures / trials <= 0.1 + 0.08
