"""Tests for all baseline estimators and the registry."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    BuriolEstimator,
    DoulionEstimator,
    JSPWedgeEstimator,
    MVVHeavyLightEstimator,
    MVVNeighborEstimator,
    PavanEstimator,
    available_baselines,
)
from repro.baselines.registry import InstanceParameters, make_baseline
from repro.errors import ParameterError
from repro.generators import barabasi_albert_graph, cycle_graph, wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream
from repro.streams.transforms import shuffled


@pytest.fixture(scope="module")
def ba_graph():
    return barabasi_albert_graph(250, 5, random.Random(6))


@pytest.fixture(scope="module")
def ba_stream(ba_graph):
    return InMemoryEdgeStream.from_graph(ba_graph, shuffled(ba_graph, random.Random(10)))


@pytest.fixture(scope="module")
def ba_t(ba_graph):
    return count_triangles(ba_graph)


def make_all(graph, t, seed=0, epsilon=0.3):
    params = InstanceParameters(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        t_hint=float(t),
        epsilon=epsilon,
    )
    return {
        name: make_baseline(name, params, random.Random(seed))
        for name in available_baselines()
    }


class TestValidation:
    def test_buriol_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            BuriolEstimator(copies=0, num_vertices=10, rng=random.Random(0))
        with pytest.raises(ParameterError):
            BuriolEstimator(copies=5, num_vertices=0, rng=random.Random(0))

    def test_doulion_rejects_bad_p(self):
        for p in (0.0, 1.5, -0.2):
            with pytest.raises(ParameterError):
                DoulionEstimator(p=p, rng=random.Random(0))

    def test_jsp_rejects_zero_samples(self):
        with pytest.raises(ParameterError):
            JSPWedgeEstimator(wedge_samples=0, rng=random.Random(0))

    def test_pavan_rejects_zero_copies(self):
        with pytest.raises(ParameterError):
            PavanEstimator(copies=0, rng=random.Random(0))

    def test_mvv_neighbor_rejects_zero_copies(self):
        with pytest.raises(ParameterError):
            MVVNeighborEstimator(copies=0, rng=random.Random(0))

    def test_mvv_heavy_light_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            MVVHeavyLightEstimator(theta=0.0, wedge_samples=5, rng=random.Random(0))
        with pytest.raises(ParameterError):
            MVVHeavyLightEstimator(theta=2.0, wedge_samples=0, rng=random.Random(0))


class TestRegistry:
    def test_roster(self):
        assert available_baselines() == [
            "buriol",
            "doulion",
            "jsp-wedge",
            "mvv-heavy-light",
            "mvv-neighbor",
            "pavan",
        ]

    def test_unknown_name(self):
        params = InstanceParameters(10, 10, 5.0, 0.3)
        with pytest.raises(ParameterError, match="unknown baseline"):
            make_baseline("nope", params, random.Random(0))

    def test_instance_parameter_validation(self):
        with pytest.raises(ParameterError):
            InstanceParameters(0, 10, 5.0, 0.3)
        with pytest.raises(ParameterError):
            InstanceParameters(10, 10, 0.0, 0.3)
        with pytest.raises(ParameterError):
            InstanceParameters(10, 10, 5.0, 1.5)

    def test_copies_helper(self):
        params = InstanceParameters(10, 10, 5.0, 0.5, leading_constant=1.0)
        assert params.copies(relative_variance=100.0) == 400


class TestBehaviour:
    def test_all_respect_declared_passes(self, ba_graph, ba_stream, ba_t):
        for name, estimator in make_all(ba_graph, ba_t).items():
            result = estimator.estimate(ba_stream)
            assert result.passes_used <= estimator.passes_required, name

    def test_all_triangle_free_near_zero(self):
        graph = cycle_graph(60)
        stream = InMemoryEdgeStream.from_graph(graph)
        for name, estimator in make_all(graph, t=5).items():
            result = estimator.estimate(stream)
            assert result.estimate == 0.0, name

    def test_all_deterministic_given_seed(self, ba_graph, ba_stream, ba_t):
        for name in available_baselines():
            r1 = make_all(ba_graph, ba_t, seed=4)[name].estimate(ba_stream)
            r2 = make_all(ba_graph, ba_t, seed=4)[name].estimate(ba_stream)
            assert r1.estimate == r2.estimate, name

    def test_all_report_space(self, ba_graph, ba_stream, ba_t):
        for name, estimator in make_all(ba_graph, ba_t).items():
            result = estimator.estimate(ba_stream)
            assert result.space_words_peak > 0, name

    @pytest.mark.parametrize(
        "name,tolerance",
        [
            ("buriol", 0.8),          # highest variance of the roster
            ("doulion", 0.6),
            ("jsp-wedge", 0.4),
            ("mvv-heavy-light", 0.4),
            ("mvv-neighbor", 0.4),
            ("pavan", 0.5),
        ],
    )
    def test_median_accuracy_over_seeds(self, ba_graph, ba_stream, ba_t, name, tolerance):
        estimates = []
        for seed in range(5):
            estimator = make_all(ba_graph, ba_t, seed=seed)[name]
            estimates.append(estimator.estimate(ba_stream).estimate)
        med = sorted(estimates)[2]
        assert abs(med - ba_t) / ba_t < tolerance, (name, estimates)

    def test_doulion_p_one_is_exact(self, ba_graph, ba_stream, ba_t):
        result = DoulionEstimator(p=1.0, rng=random.Random(0)).estimate(ba_stream)
        assert result.estimate == ba_t

    def test_doulion_space_scales_with_p(self, ba_graph, ba_stream):
        full = DoulionEstimator(p=1.0, rng=random.Random(0)).estimate(ba_stream)
        tenth = DoulionEstimator(p=0.1, rng=random.Random(0)).estimate(ba_stream)
        assert tenth.space_words_peak < 0.3 * full.space_words_peak

    def test_mvv_heavy_light_heavy_bookkeeping(self):
        # The wheel hub is the only vertex above theta for moderate theta.
        graph = wheel_graph(100)
        stream = InMemoryEdgeStream.from_graph(graph)
        est = MVVHeavyLightEstimator(theta=10.0, wedge_samples=200, rng=random.Random(1))
        result = est.estimate(stream)
        assert result.extras["heavy_vertices"] == 1.0
        assert result.extras["heavy_triangles"] == 0.0

    def test_jsp_wedge_extras(self, ba_graph, ba_stream, ba_t):
        est = JSPWedgeEstimator(wedge_samples=500, rng=random.Random(2))
        result = est.estimate(ba_stream)
        assert result.extras["wedges"] > 0
        assert 0.0 <= result.extras["closed_fraction"] <= 1.0

    def test_empty_stream_all_baselines(self):
        stream = InMemoryEdgeStream([])
        graph_params = InstanceParameters(5, 1, 1.0, 0.3)
        for name in available_baselines():
            estimator = make_baseline(name, graph_params, random.Random(0))
            result = estimator.estimate(stream)
            assert result.estimate == 0.0, name
