"""Tests for the workload characterization harness."""

from __future__ import annotations

import pytest

from repro.generators import book_graph, cycle_graph, wheel_graph
from repro.harness.characterization import characterize, characterize_suite


class TestCharacterize:
    def test_wheel_row(self):
        c = characterize(wheel_graph(50), name="wheel", kappa_promise=3)
        assert c.num_vertices == 50
        assert c.num_edges == 98
        assert c.triangles == 49
        assert c.kappa == 3
        assert c.max_degree == 49
        assert c.paper_bound == pytest.approx(98 * 3 / 49)
        assert c.crossover_ratio == pytest.approx(49 / 9)

    def test_book_skew_statistics(self):
        c = characterize(book_graph(30), name="book")
        assert c.max_te == 30
        assert c.kappa == 2
        assert c.transitivity > 0

    def test_triangle_free_bound_is_inf(self):
        c = characterize(cycle_graph(12), name="cycle")
        assert c.paper_bound == float("inf")
        assert c.crossover_ratio == 0.0

    def test_kappa_zero_crossover(self):
        from repro.graph import Graph

        c = characterize(Graph(vertices=[0, 1]), name="edgeless")
        assert c.crossover_ratio == 0.0


class TestCharacterizeSuite:
    def test_covers_whole_suite(self):
        rows = characterize_suite("tiny")
        assert len(rows) == 10
        assert {r.name for r in rows} == {
            "wheel",
            "book",
            "friendship",
            "triangulated-grid",
            "ba",
            "chung-lu",
            "watts-strogatz",
            "er-sparse",
            "planted",
            "rmat",
        }

    def test_promises_hold(self):
        for row in characterize_suite("tiny"):
            assert row.kappa <= row.kappa_promise, row.name

    def test_regime_coverage(self):
        # The suite must cover the paper's narrative: several families far
        # past the T = kappa^2 crossover (ratio >> 1, where the paper's
        # bound is the best known) and at least one near-crossover control
        # (ratio < 10, where m/sqrt(T) is competitive).
        rows = characterize_suite("tiny")
        far_past = [r for r in rows if r.triangles and r.crossover_ratio > 30]
        near = [r for r in rows if r.triangles == 0 or r.crossover_ratio < 10]
        assert len(far_past) >= 5
        assert len(near) >= 1
