"""Tests for the ablation variants (core/ablation.py)."""

from __future__ import annotations

import random

from repro.analysis.variance import empirical_moments
from repro.core.ablation import (
    run_single_estimate_exact_assigner,
    run_single_estimate_third_split,
)
from repro.core.params import ParameterPlan
from repro.generators import book_graph, friendship_graph, wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream


def plan_for(graph, kappa, epsilon=0.25):
    return ParameterPlan.build(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        kappa=kappa,
        t_guess=float(max(1, count_triangles(graph))),
        epsilon=epsilon,
    )


class TestThirdSplit:
    def test_four_passes_only(self):
        graph = wheel_graph(60)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph)
        result = run_single_estimate_third_split(stream, plan, random.Random(0))
        assert result.passes_used == 4  # assignment passes ablated

    def test_unbiased_mean(self):
        graph = wheel_graph(80)
        t = count_triangles(graph)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph)
        estimates = [
            run_single_estimate_third_split(stream, plan, random.Random(s)).estimate
            for s in range(30)
        ]
        moments = empirical_moments(estimates)
        se = moments.std / (len(estimates) ** 0.5)
        assert abs(moments.mean - t) <= 4 * se + 0.05 * t

    def test_variance_blows_up_on_book(self):
        # The paper's Section 1.2 argument, measured: on the book graph the
        # no-rule estimator's relative spread must dominate the assigned
        # version's by a wide margin.
        graph = book_graph(200)
        plan = plan_for(graph, 2)
        stream = InMemoryEdgeStream.from_graph(graph)
        split = [
            run_single_estimate_third_split(stream, plan, random.Random(s)).estimate
            for s in range(25)
        ]
        assigned = [
            run_single_estimate_exact_assigner(
                stream, plan, random.Random(s), graph
            ).estimate
            for s in range(25)
        ]
        split_rel = empirical_moments(split).relative_std
        assigned_rel = empirical_moments(assigned).relative_std
        assert split_rel > 2 * assigned_rel

    def test_rule_neutral_on_friendship(self):
        # Control: every t_e = 1, so the rule cannot help much; the two
        # variants should have comparable spread.
        graph = friendship_graph(150)
        plan = plan_for(graph, 2)
        stream = InMemoryEdgeStream.from_graph(graph)
        split = [
            run_single_estimate_third_split(stream, plan, random.Random(s)).estimate
            for s in range(20)
        ]
        assigned = [
            run_single_estimate_exact_assigner(
                stream, plan, random.Random(s), graph
            ).estimate
            for s in range(20)
        ]
        split_rel = empirical_moments(split).relative_std
        assigned_rel = empirical_moments(assigned).relative_std
        assert split_rel < 3 * assigned_rel + 0.2


class TestExactAssignerVariant:
    def test_matches_direct_injection(self):
        graph = wheel_graph(50)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph)
        a = run_single_estimate_exact_assigner(stream, plan, random.Random(3), graph)
        from repro.core import ExactAssigner
        from repro.core.estimator import run_single_estimate

        b = run_single_estimate(
            stream,
            plan,
            random.Random(3),
            assigner_factory=lambda p, r, m: ExactAssigner(graph),
        )
        assert a.estimate == b.estimate
