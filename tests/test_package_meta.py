"""Package metadata and error-hierarchy tests."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

import repro
from repro.errors import (
    EstimationError,
    GraphError,
    ParameterError,
    PassBudgetExceeded,
    ReproError,
    SpaceBudgetExceeded,
    StreamError,
)

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestVersion:
    def test_version_matches_pyproject(self):
        pyproject = (REPO / "pyproject.toml").read_text(encoding="utf-8")
        assert f'version = "{repro.__version__}"' in pyproject


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [GraphError, StreamError, ParameterError, EstimationError, SpaceBudgetExceeded],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_pass_budget_is_stream_error(self):
        assert issubclass(PassBudgetExceeded, StreamError)

    def test_single_except_catches_everything(self):
        for error in (GraphError, StreamError, ParameterError, PassBudgetExceeded):
            with pytest.raises(ReproError):
                raise error("boom")


class TestMainModule:
    def test_python_dash_m_version(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert repro.__version__ in result.stdout

    def test_python_dash_m_usage_error(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0
