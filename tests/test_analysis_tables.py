"""Tests for the plain-text table renderer."""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.analysis.tables import format_number


class TestFormatNumber:
    def test_int_grouping(self):
        assert format_number(1234567) == "1,234,567"

    def test_bool(self):
        assert format_number(True) == "yes"
        assert format_number(False) == "no"

    def test_float_compact(self):
        assert format_number(0.123456) == "0.123"

    def test_large_float_scientific(self):
        assert "e" in format_number(1.5e9) or format_number(1.5e9) == "1.5e+09"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_nan_and_inf(self):
        assert format_number(float("nan")) == "nan"
        assert format_number(float("inf")) == "inf"
        assert format_number(float("-inf")) == "-inf"

    def test_string_passthrough(self):
        assert format_number("hello") == "hello"


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_caption(self):
        text = format_table(["x"], [[1]], caption="my table")
        assert text.splitlines()[0] == "my table"

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[5], [12345]])
        lines = text.splitlines()
        assert lines[-1].endswith("12,345")
        assert lines[-2].endswith("5")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_deterministic(self):
        rows = [["x", 1.5], ["y", 2.5]]
        assert format_table(["k", "v"], rows) == format_table(["k", "v"], rows)
