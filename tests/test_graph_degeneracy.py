"""Tests for repro.graph.degeneracy: Matula-Beck peeling.

Cross-checks against networkx (quarantined to tests per DESIGN.md) and
against closed-form degeneracies of the structured families.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    book_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
    triangulated_grid_graph,
    wheel_graph,
)
from repro.graph import Graph, core_decomposition, degeneracy, degeneracy_ordering
from repro.graph.degeneracy import (
    _core_decomposition_bucketqueue,
    _strict_ordering_reference,
    later_neighbor_counts,
)
from repro.graph.validation import crosscheck_core_numbers


class TestClosedForms:
    def test_empty(self):
        assert degeneracy(Graph()) == 0

    def test_single_edge(self):
        assert degeneracy(Graph(edges=[(0, 1)])) == 1

    @pytest.mark.parametrize("n", [2, 5, 30])
    def test_path(self, n):
        assert degeneracy(path_graph(n)) == (1 if n >= 2 else 0)

    @pytest.mark.parametrize("n", [3, 7, 20])
    def test_cycle(self, n):
        assert degeneracy(cycle_graph(n)) == 2

    @pytest.mark.parametrize("n", [2, 6, 15])
    def test_star(self, n):
        assert degeneracy(star_graph(n)) == 1

    @pytest.mark.parametrize("n", [3, 4, 8])
    def test_clique(self, n):
        assert degeneracy(complete_graph(n)) == n - 1

    @pytest.mark.parametrize("n", [5, 10, 50])
    def test_wheel_is_3_degenerate(self, n):
        assert degeneracy(wheel_graph(n)) == 3

    @pytest.mark.parametrize("pages", [1, 2, 10])
    def test_book(self, pages):
        assert degeneracy(book_graph(pages)) == 2

    @pytest.mark.parametrize("p,q", [(1, 5), (3, 3), (4, 7)])
    def test_complete_bipartite(self, p, q):
        # kappa(K_{p,q}) = min(p, q), the fact Theorem 6.3's G_fixed uses.
        assert degeneracy(complete_bipartite_graph(p, q)) == min(p, q)

    def test_triangulated_grid(self):
        assert degeneracy(triangulated_grid_graph(5, 5)) == 3


class TestOrderingProperties:
    def test_ordering_is_permutation(self, wheel10):
        order = degeneracy_ordering(wheel10)
        assert sorted(order) == sorted(wheel10.vertices())

    def test_later_neighbors_bounded_by_degeneracy(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            kappa = degeneracy(g)
            order = degeneracy_ordering(g)
            counts = later_neighbor_counts(g, order)
            assert max(counts.values(), default=0) <= kappa, name

    def test_any_ordering_upper_bounds_degeneracy(self, ba_small):
        # kappa <= max later-neighbor count for *any* order (Thm 6.3's tool).
        order = sorted(ba_small.vertices())
        counts = later_neighbor_counts(ba_small, order)
        assert degeneracy(ba_small) <= max(counts.values())


class TestStrictPeelParity:
    """The vectorized bucket-array peel vs the pure-Python Matula-Beck path."""

    def test_vectorized_matches_reference_exactly(self, all_fixture_graphs):
        # The NumPy peel and its scalar mirror implement the same abstract
        # algorithm (same bucket moves, same tie-breaks): identical orders.
        for name, g in all_fixture_graphs.items():
            assert degeneracy_ordering(g) == _strict_ordering_reference(g), name

    def test_strict_order_is_minimum_degree_first(self, all_fixture_graphs):
        # Replaying the removals, each removed vertex must have minimum
        # residual degree - the defining property of Matula-Beck, which the
        # layered decomposition does not guarantee per step.
        for name, g in all_fixture_graphs.items():
            order = degeneracy_ordering(g)
            residual = g.degrees()
            removed = set()
            for v in order:
                live = {w: d for w, d in residual.items() if w not in removed}
                assert residual[v] == min(live.values()), name
                for w in g.neighbors(v):
                    if w not in removed:
                        residual[w] -= 1
                removed.add(v)

    def test_removal_degrees_reproduce_bucketqueue_cores(self, all_fixture_graphs):
        # Max-so-far of the strict removal degrees = Matula-Beck core
        # numbers, pinning the peel against the bucket-queue reference.
        for name, g in all_fixture_graphs.items():
            reference = _core_decomposition_bucketqueue(g)
            order = degeneracy_ordering(g)
            residual = g.degrees()
            removed = set()
            kappa = 0
            cores = {}
            for v in order:
                kappa = max(kappa, residual[v])
                cores[v] = kappa
                for w in g.neighbors(v):
                    if w not in removed:
                        residual[w] -= 1
                removed.add(v)
            assert cores == reference.core_numbers, name
            assert kappa == reference.degeneracy, name

    def test_randomized_crosscheck(self):
        rng = random.Random(0)
        for trial in range(20):
            g = erdos_renyi_gnm(40, rng.randrange(0, 200), rng)
            assert degeneracy_ordering(g) == _strict_ordering_reference(g), trial


class TestCoreNumbers:
    def test_core_numbers_match_networkx(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            ours, theirs = crosscheck_core_numbers(g)
            assert ours == theirs, name

    def test_degeneracy_is_max_core(self, ba_small):
        decomposition = core_decomposition(ba_small)
        assert decomposition.degeneracy == max(decomposition.core_numbers.values())

    def test_k_core_vertices(self, k4):
        decomposition = core_decomposition(k4)
        assert sorted(decomposition.k_core_vertices(3)) == [0, 1, 2, 3]
        assert decomposition.k_core_vertices(4) == []

    def test_isolated_vertices_core_zero(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)], vertices=[9])
        decomposition = core_decomposition(g)
        assert decomposition.core_numbers[9] == 0
        assert decomposition.degeneracy == 2


class TestRandomizedCrosscheck:
    @pytest.mark.parametrize("seed", range(5))
    def test_er_matches_networkx(self, seed):
        import networkx as nx

        g = erdos_renyi_gnm(60, 150, random.Random(seed))
        from repro.graph.validation import to_networkx

        ours = core_decomposition(g).core_numbers
        theirs = nx.core_number(to_networkx(g))
        assert ours == dict(theirs)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda p: p[0] != p[1]),
            max_size=40,
        )
    )
    def test_hypothesis_core_numbers(self, raw_edges):
        import networkx as nx

        edges = list({(min(u, v), max(u, v)) for u, v in raw_edges})
        g = Graph(edges=edges)
        from repro.graph.validation import to_networkx

        assert core_decomposition(g).core_numbers == dict(nx.core_number(to_networkx(g)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda p: p[0] != p[1]),
            max_size=40,
        )
    )
    def test_degeneracy_definition_on_small_graphs(self, raw_edges):
        # Definition 1.1 verified directly: kappa >= min-degree of the
        # peeled suffix subgraphs, and the ordering witnesses the upper bound.
        edges = list({(min(u, v), max(u, v)) for u, v in raw_edges})
        g = Graph(edges=edges)
        kappa = degeneracy(g)
        order = degeneracy_ordering(g)
        counts = later_neighbor_counts(g, order)
        assert max(counts.values(), default=0) <= kappa
        # The k-core with k = kappa is a subgraph of min degree >= kappa.
        core = core_decomposition(g)
        core_vertices = core.k_core_vertices(kappa)
        if kappa > 0:
            sub = g.induced_subgraph(core_vertices)
            assert min(sub.degree(v) for v in sub.vertices()) >= kappa


class TestEdgeCaseOrderingParity:
    """Degenerate inputs: bucket-array peel vs scalar mirror on each.

    The vectorized Batagelj-Zaversnik bucket arrays and the pure-Python
    scalar mirror must return *equal* orderings (the mirror is the parity
    oracle) on every pathological input shape: empty graphs, isolated
    vertices, and graphs assembled from tapes carrying self-loops or
    repeated (multigraph) edges under the builder's drop policies.
    """

    def _assert_parity(self, g):
        order = degeneracy_ordering(g)
        mirror = _strict_ordering_reference(g)
        assert order == mirror
        assert sorted(order) == sorted(g.degrees())
        counts = later_neighbor_counts(g, order)
        assert max(counts.values(), default=0) <= degeneracy(g)

    def test_empty_graph(self):
        g = Graph()
        assert degeneracy_ordering(g) == []
        assert _strict_ordering_reference(g) == []
        assert degeneracy(g) == 0

    def test_edgeless_isolated_vertices(self):
        g = Graph(vertices=[5, 0, 9, 2])
        self._assert_parity(g)
        assert degeneracy(g) == 0

    def test_isolated_vertices_mixed_with_edges(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)], vertices=[7, 11, 42])
        self._assert_parity(g)
        order = degeneracy_ordering(g)
        assert {7, 11, 42} <= set(order)

    def test_self_loop_tape_dropped_by_builder(self):
        from repro.graph.builder import GraphBuilder

        tape = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (3, 3)]
        builder = GraphBuilder(on_self_loop="ignore")
        for u, v in tape:
            builder.add_edge(u, v)
        builder.add_vertex(3)  # the self-loop-only vertex survives isolated
        g = builder.build()
        assert builder.dropped_self_loops == 3
        self._assert_parity(g)
        assert degeneracy(g) == 2  # the 0-1-2 triangle

    def test_multigraph_tape_dropped_by_builder(self):
        from repro.graph.builder import GraphBuilder

        tape = [(0, 1), (1, 0), (0, 1), (1, 2), (2, 1), (2, 3), (3, 2), (3, 0)]
        builder = GraphBuilder(on_duplicate="ignore")
        for u, v in tape:
            builder.add_edge(u, v)
        g = builder.build()
        assert builder.dropped_duplicates == 4
        self._assert_parity(g)
        assert degeneracy(g) == 2  # the 4-cycle

    def test_combined_pathologies_randomized(self):
        from repro.graph.builder import GraphBuilder

        rng = random.Random(2024)
        for _ in range(20):
            builder = GraphBuilder(on_duplicate="ignore", on_self_loop="ignore")
            for _ in range(rng.randrange(0, 60)):
                u = rng.randrange(12)
                v = rng.randrange(12)
                builder.add_edge(u, v)  # self-loops and repeats included
            for _ in range(rng.randrange(0, 4)):
                builder.add_vertex(rng.randrange(100, 110))
            self._assert_parity(builder.build())
