"""Tests for repro.sampling.combine: mean/median/median-of-means."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sampling import mean, median, median_of_means
from repro.sampling.combine import groups_for_failure_probability, samples_per_group


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestMedian:
    def test_odd_length(self):
        assert median([5.0, 1.0, 3.0]) == 3.0

    def test_even_length_averages(self):
        assert median([1.0, 2.0, 3.0, 10.0]) == 2.5

    def test_single_value(self):
        assert median([7.0]) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_median_between_min_and_max(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestMedianOfMeans:
    def test_single_group_is_mean(self):
        assert median_of_means([1.0, 2.0, 3.0, 4.0], 1) == 2.5

    def test_groups_equal_len_is_median(self):
        assert median_of_means([5.0, 1.0, 3.0], 3) == 3.0

    def test_robust_to_one_outlier_group(self):
        # Three groups of two; one group polluted by a huge outlier.
        values = [1.0, 1.0, 1.0, 1.0, 1000.0, 1000.0]
        assert median_of_means(values, 3) == 1.0

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError, match="evenly"):
            median_of_means([1.0, 2.0, 3.0], 2)

    def test_zero_groups_rejected(self):
        with pytest.raises(ValueError):
            median_of_means([1.0], 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_of_means([], 1)


class TestSizingHelpers:
    def test_groups_odd(self):
        for delta in (0.3, 0.1, 0.01):
            g = groups_for_failure_probability(delta)
            assert g % 2 == 1
            assert g >= 1

    def test_groups_monotone_in_delta(self):
        assert groups_for_failure_probability(0.01) >= groups_for_failure_probability(0.3)

    def test_groups_invalid_delta(self):
        with pytest.raises(ValueError):
            groups_for_failure_probability(0.0)
        with pytest.raises(ValueError):
            groups_for_failure_probability(1.0)

    def test_samples_per_group_scaling(self):
        # Quadrupling accuracy demand quadruples... no: halving epsilon
        # quadruples the sample count.
        base = samples_per_group(relative_variance=10.0, epsilon=0.2)
        finer = samples_per_group(relative_variance=10.0, epsilon=0.1)
        assert finer == pytest.approx(4 * base, rel=0.01)

    def test_samples_per_group_validation(self):
        with pytest.raises(ValueError):
            samples_per_group(-1.0, 0.1)
        with pytest.raises(ValueError):
            samples_per_group(1.0, 1.5)
