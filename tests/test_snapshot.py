"""Durable round-boundary snapshots: format, rotation, crash-resumable runs.

Four layers under test:

* **Container** - the ``.esnap`` binary format round-trips, and every kind
  of structural damage (truncation, bad magic, bad CRC, future version,
  header/payload disagreement) raises the typed
  :class:`~repro.errors.SnapshotFormatError`.
* **Writer** - atomic persistence, the ``snapshot_every`` cadence, the
  keep-last-K rotation, and ``load_latest`` falling back past damaged
  rotation members.
* **Resume invariant** - an estimate checkpointed at round boundaries and
  resumed from *any* snapshot is bit-identical to the uninterrupted run:
  estimate, guessing trajectory, logical-pass totals, and the root
  generator's final state; resuming against the wrong input or the wrong
  configuration is refused with the hard
  :class:`~repro.errors.SnapshotMismatchError`.
* **Process death** - a CLI run killed by SIGTERM exits 130 after flushing
  a final snapshot, a run killed by ``kill -9`` leaves a valid rotation
  behind, and both resume to the clean run's exact numbers.

The snapshot *write* path is also wired into the PR 6 fault machinery:
the ``snapshot.write`` injection site retries transient failures and on
exhaustion degrades ``snapshot->skip`` - the estimate always completes.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time

import pytest

import repro.core.driver as driver_module
from repro import EstimatorConfig, TriangleCountEstimator, resume_from
from repro.core import faults, snapshot
from repro.errors import (
    ParameterError,
    SnapshotFormatError,
    SnapshotMismatchError,
)
from repro.generators import barabasi_albert_graph
from repro.io import write_edgelist
from repro.streams import InMemoryEdgeStream
from repro.streams.file import FileEdgeStream

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# shared fixtures and the bit-identity harness (same discipline as
# tests/test_fault_tolerance.py)


@pytest.fixture(scope="module")
def tape(tmp_path_factory):
    graph = barabasi_albert_graph(250, 4, random.Random(1))
    path = tmp_path_factory.mktemp("snap") / "tape.edges"
    write_edgelist(graph, path)
    return str(path)


@pytest.fixture(scope="module")
def other_tape(tmp_path_factory):
    """A different input: same family, different seed, different content."""
    graph = barabasi_albert_graph(250, 4, random.Random(2))
    path = tmp_path_factory.mktemp("snap_other") / "tape.edges"
    write_edgelist(graph, path)
    return str(path)


def _capture_root(call):
    """Run ``call`` with the driver's root-generator construction recorded,
    returning ``(result, final_root_state)``."""
    captured = []
    real_make_rng = driver_module.make_rng

    def recording_make_rng(seed):
        rng = real_make_rng(seed)
        captured.append(rng)
        return rng

    driver_module.make_rng = recording_make_rng
    try:
        result = call()
    finally:
        driver_module.make_rng = real_make_rng
    assert captured, "driver never built the root generator"
    return result, captured[-1].getstate()


def _run(stream, cfg, kappa=4):
    return _capture_root(
        lambda: TriangleCountEstimator(cfg).estimate(stream, kappa=kappa)
    )


def _resume(source, stream, **kwargs):
    return _capture_root(lambda: resume_from(source, stream, **kwargs))


def _trajectory(result):
    return [(r.t_guess, r.median_estimate, r.accepted) for r in result.rounds]


def _assert_bit_identical(clean, resumed):
    clean_result, clean_root = clean
    resumed_result, resumed_root = resumed
    assert resumed_result.estimate == clean_result.estimate
    assert _trajectory(resumed_result) == _trajectory(clean_result)
    assert resumed_result.passes_total == clean_result.passes_total
    assert resumed_root == clean_root


def _snapshots_in(directory):
    return sorted(p for p in os.listdir(directory) if p.endswith(".esnap"))


# ---------------------------------------------------------------------------
# the container format


def _valid_bytes(round_index=5, payload=None):
    payload = payload if payload is not None else {"round_index": round_index, "x": 1}
    return snapshot.encode_snapshot(
        payload, round_index, b"c" * 32, b"f" * 32
    )


class TestContainerFormat:
    def test_round_trip(self):
        payload = {"round_index": 7, "rounds": [], "kappa": 4}
        data = snapshot.encode_snapshot(payload, 7, b"a" * 32, b"b" * 32)
        snap = snapshot.decode_snapshot(data)
        assert snap.version == snapshot.VERSION
        assert snap.round_index == 7
        assert snap.config_hash == b"a" * 32
        assert snap.fingerprint == b"b" * 32
        assert snap.payload == payload
        assert snap.path is None

    def test_header_is_fixed_width(self):
        assert len(_valid_bytes()) >= snapshot.HEADER_BYTES
        assert snapshot._HEADER_STRUCT.size == snapshot.HEADER_BYTES

    def test_truncated_header_rejected(self):
        with pytest.raises(SnapshotFormatError, match="truncated"):
            snapshot.decode_snapshot(_valid_bytes()[: snapshot.HEADER_BYTES - 1])

    def test_truncated_payload_rejected(self):
        with pytest.raises(SnapshotFormatError, match="size mismatch"):
            snapshot.decode_snapshot(_valid_bytes()[:-3])

    def test_bad_magic_rejected(self):
        data = bytearray(_valid_bytes())
        data[0] ^= 0xFF
        with pytest.raises(SnapshotFormatError, match="magic"):
            snapshot.decode_snapshot(bytes(data))

    def test_flipped_payload_byte_fails_crc(self):
        data = bytearray(_valid_bytes())
        data[snapshot.HEADER_BYTES + 2] ^= 0x01
        with pytest.raises(SnapshotFormatError, match="checksum"):
            snapshot.decode_snapshot(bytes(data))

    def test_future_version_rejected(self):
        import struct

        data = bytearray(_valid_bytes())
        struct.pack_into("<I", data, 8, snapshot.VERSION + 1)
        with pytest.raises(SnapshotFormatError, match="version"):
            snapshot.decode_snapshot(bytes(data))

    def test_header_payload_round_disagreement_rejected(self):
        data = snapshot.encode_snapshot(
            {"round_index": 3}, 4, b"c" * 32, b"f" * 32
        )
        with pytest.raises(SnapshotFormatError, match="disagreement"):
            snapshot.decode_snapshot(data)

    def test_non_object_payload_rejected(self):
        data = snapshot.encode_snapshot([1, 2, 3], 0, b"c" * 32, b"f" * 32)
        with pytest.raises(SnapshotFormatError, match="state document"):
            snapshot.decode_snapshot(data)

    def test_read_snapshot_missing_file(self, tmp_path):
        with pytest.raises(SnapshotFormatError, match="cannot read"):
            snapshot.read_snapshot(tmp_path / "nope.esnap")


class TestKnobs:
    def test_checkpoint_dir_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        assert snapshot.resolve_checkpoint_dir(None) is None
        assert snapshot.resolve_checkpoint_dir("") is None
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "/tmp/ck")
        assert snapshot.resolve_checkpoint_dir(None) == "/tmp/ck"
        assert snapshot.resolve_checkpoint_dir("/explicit") == "/explicit"
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "")
        assert snapshot.resolve_checkpoint_dir(None) is None

    def test_cadence_and_keep_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "4")
        monkeypatch.setenv("REPRO_SNAPSHOT_KEEP", "9")
        assert snapshot.resolve_snapshot_every(None) == 4
        assert snapshot.resolve_snapshot_keep(None) == 9
        assert snapshot.resolve_snapshot_every(2) == 2  # explicit beats env

    def test_malformed_env_knob_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "often")
        with pytest.raises(ParameterError):
            snapshot.resolve_snapshot_every(None)

    @pytest.mark.parametrize(
        "field", ["snapshot_every", "snapshot_keep"]
    )
    def test_config_validates_eagerly(self, field):
        with pytest.raises(ParameterError):
            EstimatorConfig(**{field: 0})


# ---------------------------------------------------------------------------
# the writer: atomicity, cadence, rotation, and the rotation as fallback


class TestWriterRotation:
    def _writer(self, directory, **kwargs):
        return snapshot.SnapshotWriter(
            directory, b"c" * 32, b"f" * 32, **kwargs
        )

    def test_keep_last_k(self, tmp_path):
        writer = self._writer(tmp_path, every=1, keep=3)
        for i in range(6):
            writer.boundary(i, {"round_index": i})
        assert _snapshots_in(tmp_path) == [
            "snap-r000003.esnap",
            "snap-r000004.esnap",
            "snap-r000005.esnap",
        ]

    def test_cadence_skips_but_first_and_final_persist(self, tmp_path):
        writer = self._writer(tmp_path, every=3, keep=10)
        for i in range(5):
            writer.boundary(i, {"round_index": i})
        # boundary 0 always persists; 1, 2 are within the cadence window;
        # 3 persists; 4 is retained in memory only...
        assert _snapshots_in(tmp_path) == ["snap-r000000.esnap", "snap-r000003.esnap"]
        # ...until the interrupt path flushes the retained document.
        writer.write_final()
        assert "snap-r000004.esnap" in _snapshots_in(tmp_path)

    def test_write_final_never_rewrites_old_state(self, tmp_path):
        writer = self._writer(tmp_path, every=1, keep=10)
        writer.boundary(2, {"round_index": 2})
        before = os.stat(writer.path_for(2)).st_mtime_ns
        writer.write_final()  # retained == last written: nothing to flush
        assert os.stat(writer.path_for(2)).st_mtime_ns == before

    def test_load_latest_returns_newest(self, tmp_path):
        writer = self._writer(tmp_path, every=1, keep=10)
        for i in range(4):
            writer.boundary(i, {"round_index": i})
        assert snapshot.load_latest(tmp_path).round_index == 3

    def test_load_latest_falls_back_past_torn_newest(self, tmp_path):
        writer = self._writer(tmp_path, every=1, keep=10)
        for i in range(3):
            writer.boundary(i, {"round_index": i})
        newest = writer.path_for(2)
        with open(newest, "r+b") as handle:
            handle.truncate(snapshot.HEADER_BYTES + 4)  # torn write
        snap = snapshot.load_latest(tmp_path)
        assert snap.round_index == 1

    def test_load_latest_empty_directory(self, tmp_path):
        with pytest.raises(SnapshotFormatError, match="no .esnap"):
            snapshot.load_latest(tmp_path)

    def test_load_latest_all_damaged(self, tmp_path):
        writer = self._writer(tmp_path, every=1, keep=10)
        writer.boundary(0, {"round_index": 0})
        with open(writer.path_for(0), "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(SnapshotFormatError):
            snapshot.load_latest(tmp_path)

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        target = tmp_path / "doc.json"
        snapshot.atomic_write_text(target, "first version, rather long")
        snapshot.atomic_write_text(target, "second")
        assert target.read_text() == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]  # no tmp litter


# ---------------------------------------------------------------------------
# what identifies "the same run": config hash and stream fingerprint


class TestRunIdentity:
    def test_config_hash_ignores_engine_knobs(self):
        a = driver_module._config_state(EstimatorConfig(seed=3, repetitions=3))
        b = driver_module._config_state(
            EstimatorConfig(
                seed=3, repetitions=3, engine_mode="sharded", workers=4, fuse=True
            )
        )
        assert snapshot.config_hash(a, 4) == snapshot.config_hash(b, 4)

    def test_config_hash_binds_trajectory_fields_and_kappa(self):
        base = driver_module._config_state(EstimatorConfig(seed=3))
        other = driver_module._config_state(EstimatorConfig(seed=4))
        assert snapshot.config_hash(base, 4) != snapshot.config_hash(other, 4)
        assert snapshot.config_hash(base, 4) != snapshot.config_hash(base, 5)

    def test_file_fingerprint_binds_content(self, tape, other_tape):
        same = snapshot.stream_fingerprint(FileEdgeStream(tape))
        again = snapshot.stream_fingerprint(FileEdgeStream(tape))
        different = snapshot.stream_fingerprint(FileEdgeStream(other_tape))
        assert same == again
        assert same != different

    def test_memory_stream_fingerprint_matches_itself_only(self):
        g1 = barabasi_albert_graph(60, 3, random.Random(1))
        g2 = barabasi_albert_graph(60, 3, random.Random(9))
        s1 = snapshot.stream_fingerprint(InMemoryEdgeStream.from_graph(g1))
        s2 = snapshot.stream_fingerprint(InMemoryEdgeStream.from_graph(g2))
        assert s1 == snapshot.stream_fingerprint(InMemoryEdgeStream.from_graph(g1))
        assert s1 != s2


# ---------------------------------------------------------------------------
# the resume invariant, in process


class TestResumeBitIdentity:
    BASE = dict(
        seed=3,
        repetitions=3,
        engine_mode="chunked",
        workers=1,
        fuse=True,
        speculate=True,
        speculate_depth=3,
    )

    def _checkpointed(self, tape, ckdir):
        """One clean run and one checkpointed run, both root-captured."""
        stream = FileEdgeStream(tape)
        stream.stats()
        clean = _run(stream, EstimatorConfig(**self.BASE))
        snapped = _run(
            stream,
            EstimatorConfig(
                **self.BASE, checkpoint_dir=str(ckdir), snapshot_keep=64
            ),
        )
        _assert_bit_identical(clean, snapped)
        return stream, clean

    def test_resume_from_every_boundary(self, tape, tmp_path):
        """Kill-at-round-k for every k the rotation holds: resuming from
        each snapshot reproduces the uninterrupted run bit-for-bit,
        including the root generator's final state."""
        ckdir = tmp_path / "ck"
        stream, clean = self._checkpointed(tape, ckdir)
        names = _snapshots_in(ckdir)
        assert names, "checkpointed run wrote no snapshots"
        for name in names:
            resumed = _resume(str(ckdir / name), stream)
            _assert_bit_identical(clean, resumed)

    def test_resume_from_directory_uses_newest(self, tape, tmp_path):
        ckdir = tmp_path / "ck"
        stream, clean = self._checkpointed(tape, ckdir)
        resumed = _resume(str(ckdir), stream)
        _assert_bit_identical(clean, resumed)

    def test_resume_across_engines(self, tape, tmp_path):
        """Engine knobs are outside the config hash: a run checkpointed
        under one engine resumes under another with identical numbers."""
        ckdir = tmp_path / "ck"
        stream, clean = self._checkpointed(tape, ckdir)
        resumed = _resume(
            str(ckdir),
            stream,
            overrides={"engine_mode": "python", "fuse": False, "speculate": False},
        )
        _assert_bit_identical(clean, resumed)

    def test_canonical_sharded_workload_resumes(self, tape, tmp_path, monkeypatch):
        """The PR's acceptance scenario: the canonical file-backed
        workers=2 fused depth-3 workload, checkpointed, resumed from a
        mid-run snapshot - bit-identical to the uninterrupted run."""
        pytest.importorskip("numpy")
        from repro.core import executor

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)
        base = dict(self.BASE, engine_mode="sharded", workers=2, chunk_size=64)
        stream = FileEdgeStream(tape)
        stream.stats()
        clean = _run(stream, EstimatorConfig(**base))
        ckdir = tmp_path / "ck"
        snapped = _run(
            stream,
            EstimatorConfig(**base, checkpoint_dir=str(ckdir), snapshot_keep=64),
        )
        _assert_bit_identical(clean, snapped)
        names = _snapshots_in(ckdir)
        mid = names[len(names) // 2]
        resumed = _resume(str(ckdir / mid), stream)
        _assert_bit_identical(clean, resumed)

    def test_resume_continues_checkpointing_into_source_dir(self, tape, tmp_path):
        ckdir = tmp_path / "ck"
        stream, _clean = self._checkpointed(tape, ckdir)
        names = _snapshots_in(ckdir)
        first = names[0]
        # Drop everything after the first snapshot, resume from it, and the
        # continuation must rebuild the later boundaries on disk.
        for name in names[1:]:
            os.unlink(ckdir / name)
        resume_from(str(ckdir / first), stream)
        assert len(_snapshots_in(ckdir)) > 1

    def test_rotation_fallback_end_to_end(self, tape, tmp_path):
        """A torn newest snapshot (the only file a crash mid-write can
        damage) is skipped and the run resumes from the previous one."""
        ckdir = tmp_path / "ck"
        stream, clean = self._checkpointed(tape, ckdir)
        names = _snapshots_in(ckdir)
        assert len(names) >= 2, "need a rotation to test the fallback"
        newest = ckdir / names[-1]
        with open(newest, "r+b") as handle:
            handle.truncate(os.path.getsize(newest) - 7)
        resumed = _resume(str(ckdir), stream)
        _assert_bit_identical(clean, resumed)

    def test_wrong_stream_refused(self, tape, other_tape, tmp_path):
        ckdir = tmp_path / "ck"
        self._checkpointed(tape, ckdir)
        wrong = FileEdgeStream(other_tape)
        wrong.stats()
        with pytest.raises(SnapshotMismatchError, match="fingerprint"):
            resume_from(str(ckdir), wrong)

    def test_wrong_config_refused(self, tape, tmp_path):
        ckdir = tmp_path / "ck"
        stream, _clean = self._checkpointed(tape, ckdir)
        different_seed = EstimatorConfig(**dict(self.BASE, seed=4))
        with pytest.raises(SnapshotMismatchError, match="config hash"):
            resume_from(str(ckdir), stream, config=different_seed)

    def test_trajectory_override_refused(self, tape, tmp_path):
        """Overrides may retune the engine, never the trajectory: changing
        a hashed field through an override trips the mismatch check."""
        ckdir = tmp_path / "ck"
        stream, _clean = self._checkpointed(tape, ckdir)
        with pytest.raises(SnapshotMismatchError, match="config hash"):
            resume_from(str(ckdir), stream, overrides={"repetitions": 5})

    def test_unknown_override_refused(self, tape, tmp_path):
        ckdir = tmp_path / "ck"
        stream, _clean = self._checkpointed(tape, ckdir)
        with pytest.raises(ParameterError, match="unknown resume override"):
            resume_from(str(ckdir), stream, overrides={"bogus_knob": 1})

    def test_tampered_payload_is_format_error(self, tape, tmp_path):
        """A payload that passes the CRC but carries garbage state (a
        writer bug, not disk damage) still fails typed, not with a
        KeyError deep in the driver."""
        ckdir = tmp_path / "ck"
        stream, _clean = self._checkpointed(tape, ckdir)
        name = _snapshots_in(ckdir)[0]
        snap = snapshot.read_snapshot(ckdir / name)
        broken = dict(snap.payload)
        del broken["rng"]
        data = snapshot.encode_snapshot(
            broken, snap.round_index, snap.config_hash, snap.fingerprint
        )
        target = tmp_path / "tampered.esnap"
        target.write_bytes(data)
        with pytest.raises(SnapshotFormatError):
            resume_from(str(target), stream)


# ---------------------------------------------------------------------------
# snapshot writes under the fault machinery


class TestSnapshotFaults:
    BASE = dict(seed=3, repetitions=3, engine_mode="chunked", workers=1)

    def test_transient_write_fault_retries_and_recovers(self, tape, tmp_path):
        stream = FileEdgeStream(tape)
        stream.stats()
        clean = _run(stream, EstimatorConfig(**self.BASE))
        ckdir = tmp_path / "ck"
        faulted = _run(
            stream,
            EstimatorConfig(
                **self.BASE,
                checkpoint_dir=str(ckdir),
                snapshot_keep=64,
                faults="snapshot.write@0",
            ),
        )
        _assert_bit_identical(clean, faulted)
        assert faulted[0].degradations == ()
        assert _snapshots_in(ckdir), "retried write never landed"

    def test_exhausted_write_fault_degrades_to_no_snapshot(self, tape, tmp_path):
        """Retries disabled: the first failed write exhausts the budget,
        the ladder records ``snapshot->skip``, the writer disarms, and the
        estimate still completes bit-identically - durability is an
        add-on, never a correctness dependency."""
        stream = FileEdgeStream(tape)
        stream.stats()
        clean = _run(stream, EstimatorConfig(**self.BASE))
        ckdir = tmp_path / "ck"
        spec = "snapshot.write@" + ",".join(str(i) for i in range(64))
        faulted = _run(
            stream,
            EstimatorConfig(
                **self.BASE,
                checkpoint_dir=str(ckdir),
                faults=spec,
                max_retries=0,
            ),
        )
        _assert_bit_identical(clean, faulted)
        reports = faulted[0].degradations
        assert [r.action for r in reports] == [faults.ACTION_NO_SNAPSHOT]
        assert reports[0].site == faults.SNAPSHOT_WRITE
        assert _snapshots_in(ckdir) == []


# ---------------------------------------------------------------------------
# process death: SIGTERM flushes a final snapshot, kill -9 leaves a valid
# rotation, and both resume to the clean run's numbers via the CLI


def _cli(args, env=None, **kwargs):
    full_env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    if env:
        full_env.update(env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=full_env,
        cwd=REPO,
        **kwargs,
    )


def _wait_for_snapshots(directory, count, proc, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(_snapshots_in(directory)) >= count:
            return True
        if proc.poll() is not None:
            return False
        time.sleep(0.01)
    return False


def _result_lines(stdout):
    """The deterministic result lines (estimate/rounds/passes)."""
    return [
        line
        for line in stdout.splitlines()
        if line.startswith(("estimate:", "rounds:", "passes:"))
    ]


@pytest.fixture(scope="module")
def big_tape(tmp_path_factory):
    """Big enough that the pure-Python engine runs for seconds - a wide
    window to deliver a signal after the first snapshots land."""
    graph = barabasi_albert_graph(2000, 5, random.Random(1))
    path = tmp_path_factory.mktemp("snap_kill") / "big.edges"
    write_edgelist(graph, path)
    return str(path)


@pytest.fixture(scope="module")
def clean_cli_lines(big_tape):
    """The uninterrupted run's result lines (fast chunked engine - results
    are engine-independent, which the resume comparisons rely on)."""
    proc = _cli(
        ["estimate", big_tape, "--kappa", "6", "--seed", "3",
         "--repetitions", "3", "--engine", "chunked"]
    )
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err
    return _result_lines(out)


class TestProcessDeath:
    def _killed_run(self, big_tape, ckdir, sig):
        """Start a slow checkpointing estimate, deliver ``sig`` once the
        rotation is non-empty, and return the finished process."""
        proc = _cli(
            ["estimate", big_tape, "--kappa", "6", "--seed", "3",
             "--repetitions", "3", "--engine", "python",
             "--checkpoint-dir", str(ckdir), "--snapshot-keep", "64"]
        )
        if not _wait_for_snapshots(ckdir, 1, proc):
            out, err = proc.communicate(timeout=30)
            pytest.fail(
                f"run finished (rc={proc.returncode}) before a snapshot "
                f"landed; stderr: {err}"
            )
        proc.send_signal(sig)
        out, err = proc.communicate(timeout=60)
        return proc.returncode, out, err

    def test_sigterm_flushes_final_snapshot_and_exits_130(
        self, big_tape, tmp_path, clean_cli_lines
    ):
        ckdir = tmp_path / "ck"
        ckdir.mkdir()
        rc, _out, err = self._killed_run(big_tape, ckdir, signal.SIGTERM)
        assert rc == 130
        assert "interrupted: final snapshot flushed" in err
        assert _snapshots_in(ckdir)
        resume = _cli(["resume", str(ckdir), big_tape, "--engine", "chunked"])
        out, err = resume.communicate(timeout=120)
        assert resume.returncode == 0, err
        assert "resuming:  round" in out
        assert _result_lines(out) == clean_cli_lines

    def test_kill_dash_nine_then_resume(
        self, big_tape, tmp_path, clean_cli_lines
    ):
        """The acceptance scenario's harsh half: SIGKILL mid-run (no
        handler, no flush - the atomic rename discipline alone must keep
        the rotation valid), then resume bit-identically."""
        ckdir = tmp_path / "ck"
        ckdir.mkdir()
        rc, _out, _err = self._killed_run(big_tape, ckdir, signal.SIGKILL)
        assert rc == -signal.SIGKILL
        assert _snapshots_in(ckdir)
        snapshot.load_latest(ckdir)  # the rotation is structurally valid
        resume = _cli(["resume", str(ckdir), big_tape, "--engine", "chunked"])
        out, err = resume.communicate(timeout=120)
        assert resume.returncode == 0, err
        assert _result_lines(out) == clean_cli_lines

    def test_resumed_cli_run_matches_checkpointed_cli_run(
        self, big_tape, tmp_path, clean_cli_lines
    ):
        """Checkpointing itself must not perturb the CLI numbers."""
        ckdir = tmp_path / "ck"
        proc = _cli(
            ["estimate", big_tape, "--kappa", "6", "--seed", "3",
             "--repetitions", "3", "--engine", "chunked",
             "--checkpoint-dir", str(ckdir)]
        )
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert _result_lines(out) == clean_cli_lines
