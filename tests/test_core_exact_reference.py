"""Tests for the exact one-pass reference counter."""

from __future__ import annotations

import random

import pytest

from repro.core import ExactStreamingCounter
from repro.generators import erdos_renyi_gnm, wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream, SpaceMeter
from repro.streams.transforms import shuffled


class TestExactCounter:
    def test_matches_offline_count(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            stream = InMemoryEdgeStream.from_graph(g)
            result = ExactStreamingCounter().count(stream)
            assert result.triangles == count_triangles(g), name

    def test_order_invariance(self):
        g = erdos_renyi_gnm(60, 250, random.Random(3))
        t = count_triangles(g)
        for seed in range(5):
            stream = InMemoryEdgeStream.from_graph(g, shuffled(g, random.Random(seed)))
            assert ExactStreamingCounter().count(stream).triangles == t

    def test_one_pass(self, wheel10):
        stream = InMemoryEdgeStream.from_graph(wheel10)
        assert ExactStreamingCounter().count(stream).passes_used == 1

    def test_space_is_two_words_per_edge(self, wheel10):
        stream = InMemoryEdgeStream.from_graph(wheel10)
        result = ExactStreamingCounter().count(stream)
        assert result.space_words_peak == 2 * wheel10.num_edges

    def test_empty_stream(self):
        result = ExactStreamingCounter().count(InMemoryEdgeStream([]))
        assert result.triangles == 0
        assert result.space_words_peak == 0

    def test_external_meter(self, grid4):
        meter = SpaceMeter()
        stream = InMemoryEdgeStream.from_graph(grid4)
        ExactStreamingCounter().count(stream, meter=meter)
        assert meter.peak_breakdown() == {"adjacency": 2 * grid4.num_edges}
