"""Tests for Algorithm 3 (StreamingAssigner) against Definition 5.2."""

from __future__ import annotations

import random

import pytest

from repro.core import ExactAssigner, ParameterPlan, StreamingAssigner
from repro.graph import count_triangles, degeneracy, enumerate_triangles, per_edge_triangle_counts
from repro.generators import barabasi_albert_graph, book_graph, friendship_graph, wheel_graph
from repro.streams import InMemoryEdgeStream, PassScheduler, SpaceMeter
from repro.types import triangle_edges


def plan_for(graph, kappa, epsilon=0.25, t_guess=None):
    t = t_guess if t_guess is not None else max(1, count_triangles(graph))
    return ParameterPlan.build(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        kappa=kappa,
        t_guess=float(t),
        epsilon=epsilon,
    )


def run_assigner(graph, kappa, triangles, seed=0, epsilon=0.25):
    plan = plan_for(graph, kappa, epsilon)
    stream = InMemoryEdgeStream.from_graph(graph)
    scheduler = PassScheduler(stream)
    assigner = StreamingAssigner(plan, random.Random(seed), SpaceMeter())
    return assigner.assign(scheduler, triangles)


class TestExactAssigner:
    def test_assigns_min_te_edge(self, book8):
        te = per_edge_triangle_counts(book8)
        assigner = ExactAssigner(book8)
        triangles = list(enumerate_triangles(book8))
        out = assigner.assign(None, triangles)
        for t, e in out.items():
            assert e in triangle_edges(t)
            assert te[e] == min(te[f] for f in triangle_edges(t))

    def test_never_unassigned(self, grid4):
        out = ExactAssigner(grid4).assign(None, list(enumerate_triangles(grid4)))
        assert all(e is not None for e in out.values())

    def test_zero_passes_declared(self, triangle):
        assert ExactAssigner(triangle).passes_required == 0


class TestStreamingAssignerBasics:
    def test_empty_input_consumes_no_passes(self, wheel10):
        plan = plan_for(wheel10, 3)
        stream = InMemoryEdgeStream.from_graph(wheel10)
        scheduler = PassScheduler(stream)
        out = StreamingAssigner(plan, random.Random(0)).assign(scheduler, [])
        assert out == {}
        assert scheduler.passes_used == 0

    def test_two_passes_used(self, wheel10):
        plan = plan_for(wheel10, 3)
        stream = InMemoryEdgeStream.from_graph(wheel10)
        scheduler = PassScheduler(stream)
        triangles = list(enumerate_triangles(wheel10))[:3]
        StreamingAssigner(plan, random.Random(0)).assign(scheduler, triangles)
        assert scheduler.passes_used == 2

    def test_unique_assignment_to_contained_edge(self, grid4):
        # Definition 5.2(1): assigned edge is one of the triangle's own.
        triangles = list(enumerate_triangles(grid4))
        out = run_assigner(grid4, 3, triangles)
        assert set(out) == set(triangles)
        for t, e in out.items():
            assert e is None or e in triangle_edges(t)

    def test_duplicate_input_triangles_deduplicated(self, wheel10):
        triangles = list(enumerate_triangles(wheel10))[:2]
        out = run_assigner(wheel10, 3, triangles * 5)
        assert set(out) == set(triangles)

    def test_deterministic_given_seed(self, grid4):
        triangles = list(enumerate_triangles(grid4))
        out1 = run_assigner(grid4, 3, triangles, seed=5)
        out2 = run_assigner(grid4, 3, triangles, seed=5)
        assert out1 == out2


class TestDefinition52Properties:
    def test_almost_all_assigned_on_benign_graph(self, grid4):
        # Definition 5.2(2): on the triangulated grid no edge is heavy
        # (t_e <= 2 << kappa/eps), so everything should be assigned.
        triangles = list(enumerate_triangles(grid4))
        out = run_assigner(grid4, 3, triangles)
        assigned = [t for t, e in out.items() if e is not None]
        assert len(assigned) == len(triangles)

    def test_bounded_assignment_on_book(self, book8):
        # Definition 5.2(3): the spine (t_e = 8 > kappa/eps = 8) must not
        # swallow every triangle; with kappa=2, eps=0.25, the cutoff
        # kappa/(2 eps) = 4 keeps assignments on the pages.
        triangles = list(enumerate_triangles(book8))
        out = run_assigner(book8, 2, triangles, seed=3)
        spine_hits = sum(1 for e in out.values() if e == (0, 1))
        assert spine_hits <= 2  # estimate noise may leak a little

    def test_tau_max_bounded(self):
        # tau_max <= kappa/eps whp across a real workload.
        graph = barabasi_albert_graph(150, 4, random.Random(3))
        triangles = list(enumerate_triangles(graph))
        out = run_assigner(graph, 4, triangles, seed=1)
        per_edge: dict = {}
        for t, e in out.items():
            if e is not None:
                per_edge[e] = per_edge.get(e, 0) + 1
        kappa = degeneracy(graph)
        assert max(per_edge.values()) <= kappa / 0.25 + 2

    def test_most_triangles_assigned_on_ba(self):
        graph = barabasi_albert_graph(150, 4, random.Random(3))
        triangles = list(enumerate_triangles(graph))
        out = run_assigner(graph, 4, triangles, seed=1)
        assigned = sum(1 for e in out.values() if e is not None)
        # Lemma 5.12-style: heavy + costly triangles are a small fraction.
        assert assigned >= 0.6 * len(triangles)

    def test_friendship_all_assigned(self, friendship6):
        # All t_e = 1: nothing is heavy, everything assigns.
        triangles = list(enumerate_triangles(friendship6))
        out = run_assigner(friendship6, 2, triangles)
        assert all(e is not None for e in out.values())


class TestDegreeCutoff:
    def test_high_degree_edges_skipped(self, book8):
        # With a tiny degree cutoff, every edge gets Y = inf and every
        # triangle is unassigned.
        plan = ParameterPlan.build(
            num_vertices=book8.num_vertices,
            num_edges=book8.num_edges,
            kappa=2,
            t_guess=1e9,  # blows the cutoffs down to ~0
            epsilon=0.25,
        )
        assert plan.degree_cutoff < 1
        stream = InMemoryEdgeStream.from_graph(book8)
        scheduler = PassScheduler(stream)
        out = StreamingAssigner(plan, random.Random(0)).assign(
            scheduler, list(enumerate_triangles(book8))
        )
        assert all(e is None for e in out.values())

    def test_space_charged_to_meter(self, grid4):
        plan = plan_for(grid4, 3)
        meter = SpaceMeter()
        stream = InMemoryEdgeStream.from_graph(grid4)
        scheduler = PassScheduler(stream)
        StreamingAssigner(plan, random.Random(0), meter).assign(
            scheduler, list(enumerate_triangles(grid4))
        )
        breakdown = meter.peak_breakdown()
        assert breakdown.get("assignment-reservoirs", 0) > 0
        assert breakdown.get("assignment-degrees", 0) > 0
