"""Sharded pass-executor parity: bit-identical across worker counts.

The sharded executor (:mod:`repro.core.executor`) must produce exactly the
results of the serial chunked engine - and therefore of the pure-Python
reference path - for the same seeds, whatever the worker count, batch
size, or chunk boundaries.  These tests pin that invariant end to end
(single runner, parallel runner, driver, file streams) and at the plan
level, including the cross-instance unique-key dedup fan-out of passes 4
and 6.

Worker pools are real processes (reused across tests); the task-batch
floor is shrunk so even tiny test streams split into many shard tasks.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import engine, executor
from repro.core.estimator import pass4_closure_triangles, run_single_estimate
from repro.core.kernels import (
    DegreeCountPlan,
    NeighborPositionPlan,
    PositionCollectPlan,
    WatchKeyPlan,
)
from repro.core.parallel import run_parallel_estimates
from repro.core.params import ParameterPlan
from repro.core.driver import EstimatorConfig, TriangleCountEstimator
from repro.generators import planted_triangles_graph, rmat_graph, wheel_graph
from repro.graph import count_triangles, degeneracy
from repro.streams import InMemoryEdgeStream, PassScheduler, SpaceMeter
from repro.streams.file import FileEdgeStream
from repro.streams.transforms import shuffled

WORKER_COUNTS = [2, 4]


@pytest.fixture(autouse=True)
def _small_task_batches(monkeypatch):
    """Force multi-task shards even on tiny test streams."""
    monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 32)


def _stream_and_plan(graph, order_seed=11, epsilon=0.25):
    stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(order_seed)))
    kappa = max(1, degeneracy(graph))
    t = float(max(1, count_triangles(graph)))
    plan = ParameterPlan.build(graph.num_vertices, graph.num_edges, kappa, t, epsilon)
    return stream, plan


GRAPHS = {
    "wheel": lambda: wheel_graph(120),
    "rmat": lambda: rmat_graph(8, 6, random.Random(5)),
    "planted": lambda: planted_triangles_graph(150, 60, kappa_clique=6, rng=random.Random(7)),
}


class TestSingleRunnerSharded:
    @pytest.mark.parametrize("family", sorted(GRAPHS))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_identical_to_serial_and_python(self, family, workers):
        stream, plan = _stream_and_plan(GRAPHS[family]())
        with engine.engine_overrides("python"):
            ref_py = run_single_estimate(stream, plan, random.Random(1))
        with engine.engine_overrides("chunked", 67, 1):
            meter_serial = SpaceMeter()
            ref = run_single_estimate(stream, plan, random.Random(1), meter=meter_serial)
        with engine.engine_overrides("chunked", 67, workers):
            meter_sharded = SpaceMeter()
            got = run_single_estimate(stream, plan, random.Random(1), meter=meter_sharded)
        assert got == ref == ref_py  # estimates, diagnostics, passes: all fields
        assert meter_sharded.peak_words == meter_serial.peak_words
        assert meter_sharded.peak_breakdown() == meter_serial.peak_breakdown()

    @pytest.mark.parametrize("chunk", [1, 7, 64, 119, 120, 121, 100_000])
    def test_chunk_boundary_splits(self, chunk):
        # m = 2*120 - 2 = 238 for the wheel: chunks land mid-stream, at the
        # stream edge, and beyond it; every split must merge identically.
        stream, plan = _stream_and_plan(wheel_graph(120))
        with engine.engine_overrides("chunked", chunk, 1):
            ref = run_single_estimate(stream, plan, random.Random(3))
        with engine.engine_overrides("chunked", chunk, 2):
            got = run_single_estimate(stream, plan, random.Random(3))
        assert got == ref

    def test_duplicate_edges_stay_bit_identical(self):
        # Unvalidated tapes may repeat edges; the occurrence-counted pass-6
        # merge (summed, not presence-based) must keep shards identical.
        graph = wheel_graph(80)
        order = shuffled(graph, random.Random(3))
        tape = order + order[:9]
        stream = InMemoryEdgeStream(tape, validate=False)
        plan = ParameterPlan.build(
            graph.num_vertices, len(tape), 3, float(count_triangles(graph)), 0.25
        )
        with engine.engine_overrides("python"):
            ref = run_single_estimate(stream, plan, random.Random(5))
        with engine.engine_overrides("chunked", 37, 4):
            got = run_single_estimate(stream, plan, random.Random(5))
        assert got == ref

    def test_file_stream_sharded(self, tmp_path):
        graph = wheel_graph(90)
        order = shuffled(graph, random.Random(2))
        path = tmp_path / "edges.txt"
        path.write_text(
            "# comment line\n" + "\n".join(f"{u} {v}" for u, v in order) + "\n",
            encoding="utf-8",
        )
        stream = FileEdgeStream(path)
        plan = ParameterPlan.build(
            graph.num_vertices, graph.num_edges, 3, float(count_triangles(graph)), 0.25
        )
        with engine.engine_overrides("python"):
            ref = run_single_estimate(stream, plan, random.Random(4))
        with engine.engine_overrides("chunked", 31, 2):
            got = run_single_estimate(stream, plan, random.Random(4))
        assert got == ref


class TestParallelRunnerSharded:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_identical_results(self, workers):
        stream, plan = _stream_and_plan(GRAPHS["planted"]())
        rngs = lambda: [random.Random(s) for s in range(5)]  # noqa: E731
        with engine.engine_overrides("python"):
            ref = run_parallel_estimates(stream, plan, rngs())
        with engine.engine_overrides("chunked", 53, workers):
            got = run_parallel_estimates(stream, plan, rngs())
        assert got == ref

    def test_cross_instance_watch_dedup_fans_out(self):
        # Two instances watch the *same* missing edge: the shared pass-4
        # scan carries one unique key and the hit must fan out to both
        # (instance, draw) watchers identically under sharding.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4)]
        stream = InMemoryEdgeStream(edges)
        draws = [[(0, 1)], [(0, 1)]]  # both instances drew the same edge
        owners = [[0], [0]]
        apexes = [[2], [2]]  # wedge {0-1, 0-2}: missing edge is (1, 2)
        results = []
        for workers in (1, 2):
            scheduler = PassScheduler(stream)
            with engine.engine_overrides("chunked", 2, workers):
                results.append(
                    pass4_closure_triangles(
                        scheduler, draws, owners, apexes, SpaceMeter(), chunked=True
                    )
                )
        assert results[0] == results[1] == [[(0, 1, 2)], [(0, 1, 2)]]

    def test_driver_workers_config_end_to_end(self):
        graph = wheel_graph(150)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(0)))
        base = dict(seed=7, repetitions=3, t_hint=float(t))
        serial = TriangleCountEstimator(
            EstimatorConfig(engine_mode="chunked", workers=1, **base)
        ).estimate(stream, kappa=3)
        sharded = TriangleCountEstimator(
            EstimatorConfig(engine_mode="sharded", workers=2, chunk_size=41, **base)
        ).estimate(stream, kappa=3)
        assert sharded.estimate == serial.estimate
        assert sharded.rounds == serial.rounds


class TestPlanLevelMerges:
    def _scheduler(self, edges):
        return PassScheduler(InMemoryEdgeStream(edges, validate=False))

    def test_degree_counts_sum_across_shards(self):
        rng = random.Random(0)
        edges = [(rng.randrange(50), 50 + rng.randrange(50)) for _ in range(500)]
        ids = np.arange(0, 100, 3, dtype=np.int64)
        serial = executor.run_plan(
            self._scheduler(edges), DegreeCountPlan(ids), chunk_size=16, workers=1
        )
        sharded = executor.run_plan(
            self._scheduler(edges), DegreeCountPlan(ids), chunk_size=16, workers=2
        )
        assert serial.tolist() == sharded.tolist()

    def test_positions_served_across_batch_boundaries(self):
        edges = [(i, i + 1) for i in range(400)]
        positions = np.array([0, 31, 32, 33, 399, 200, 200], dtype=np.int64)
        serial = executor.run_plan(
            self._scheduler(edges), PositionCollectPlan(positions), chunk_size=32, workers=1
        )
        sharded = executor.run_plan(
            self._scheduler(edges), PositionCollectPlan(positions), chunk_size=32, workers=2
        )
        assert serial == sharded == [edges[p] for p in positions.tolist()]

    def test_neighbor_occurrences_merge_in_stream_order(self):
        # Owner 5 appears on many edges; occurrence numbering must fold
        # per-batch counts in stream-offset order to stay global.
        edges = [(5, 100 + i) if i % 3 == 0 else (i, i + 1) for i in range(300)]
        owner_ids = np.array([5], dtype=np.int64)
        owner_index = np.zeros(4, dtype=np.int64)
        positions = np.array([0, 7, 50, 99], dtype=np.int64)
        results = [
            executor.run_plan(
                self._scheduler(edges),
                NeighborPositionPlan(owner_ids, owner_index, positions),
                chunk_size=16,
                workers=w,
            ).tolist()
            for w in (1, 2, 4)
        ]
        assert results[0] == results[1] == results[2]
        incident = [v if u == 5 else u for u, v in edges if 5 in (u, v)]
        expected = [incident[p] if p < len(incident) else -1 for p in positions.tolist()]
        assert results[0] == expected

    def test_watch_keys_union_and_early_stop_keeps_budget(self):
        # All keys found in the first few chunks: the serial path abandons
        # early; sharded must return the same union and the pass budget
        # must survive either way.
        edges = [(0, 1), (2, 3)] + [(10 + i, 11 + i) for i in range(200)]
        keys = [(0, 1), (2, 3)]
        for workers in (1, 2):
            scheduler = PassScheduler(
                InMemoryEdgeStream(edges, validate=False), max_passes=1
            )
            found = executor.run_plan(
                scheduler, WatchKeyPlan(keys), chunk_size=8, workers=workers
            )
            assert found == {(0, 1), (2, 3)}
            assert scheduler.passes_used == 1

    def test_sharded_pass_counts_once(self):
        edges = [(i, i + 1) for i in range(100)]
        scheduler = self._scheduler(edges)
        ids = np.array([0, 1], dtype=np.int64)
        executor.run_plan(scheduler, DegreeCountPlan(ids), chunk_size=8, workers=2)
        assert scheduler.passes_used == 1
        # The stream stays sequential: the next pass opens cleanly.
        executor.run_plan(scheduler, DegreeCountPlan(ids), chunk_size=8, workers=2)
        assert scheduler.passes_used == 2


class TestEngineKnobs:
    def test_workers_override_restores(self):
        before = engine.workers()
        with engine.engine_overrides(num_workers=3):
            assert engine.workers() == 3
        assert engine.workers() == before

    def test_sharded_mode_defaults_workers_to_cores(self):
        import os

        with engine.engine_overrides("sharded"):
            assert engine.effective_workers() == (os.cpu_count() or 1)
        with engine.engine_overrides("sharded", num_workers=5):
            assert engine.effective_workers() == 5

    def test_explicit_one_worker_stays_in_process_under_sharded(self):
        # "workers=1 means in-process" is a contract: an explicit 1 must
        # not be escalated to the core count by the sharded default.
        with engine.engine_overrides("sharded", num_workers=1):
            assert engine.effective_workers() == 1

    def test_invalid_workers_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            engine.set_engine("chunked", num_workers=0)
        with pytest.raises(ParameterError):
            EstimatorConfig(workers=0)
        with pytest.raises(ParameterError):
            EstimatorConfig(engine_mode="turbo")
