"""Tests for repro.streams.multipass.PassScheduler and transforms."""

from __future__ import annotations

import random

import pytest

from repro.errors import PassBudgetExceeded, StreamError
from repro.generators import book_graph, wheel_graph
from repro.streams import InMemoryEdgeStream, PassScheduler
from repro.streams.transforms import (
    adversarial_heavy_edge_last_order,
    shuffled,
    sorted_order,
)


@pytest.fixture
def stream():
    return InMemoryEdgeStream([(0, 1), (1, 2), (0, 2)])


class TestPassScheduler:
    def test_counts_passes(self, stream):
        sched = PassScheduler(stream)
        assert sched.passes_used == 0
        list(sched.new_pass())
        assert sched.passes_used == 1
        list(sched.new_pass())
        assert sched.passes_used == 2

    def test_num_edges(self, stream):
        assert PassScheduler(stream).num_edges == 3

    def test_pass_content_matches_stream(self, stream):
        sched = PassScheduler(stream)
        assert list(sched.new_pass()) == list(stream)

    def test_budget_enforced(self, stream):
        sched = PassScheduler(stream, max_passes=2)
        list(sched.new_pass())
        list(sched.new_pass())
        with pytest.raises(PassBudgetExceeded, match="budget of 2"):
            sched.new_pass()

    def test_budget_must_be_positive(self, stream):
        with pytest.raises(StreamError):
            PassScheduler(stream, max_passes=0)

    def test_interleaved_passes_rejected(self, stream):
        sched = PassScheduler(stream)
        it = sched.new_pass()
        next(it)  # pass is open now
        with pytest.raises(StreamError, match="still open"):
            sched.new_pass()

    def test_closing_iterator_ends_pass(self, stream):
        sched = PassScheduler(stream)
        it = sched.new_pass()
        next(it)
        it.close()
        list(sched.new_pass())  # must not raise
        assert sched.passes_used == 2

    def test_exception_inside_pass_ends_it(self, stream):
        sched = PassScheduler(stream)

        def consume_and_fail():
            for _ in sched.new_pass():
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            consume_and_fail()
        list(sched.new_pass())
        assert sched.passes_used == 2


class TestTransforms:
    def test_shuffled_is_permutation(self, wheel10):
        order = shuffled(wheel10, random.Random(5))
        assert sorted(order) == wheel10.edge_list()

    def test_shuffled_deterministic_given_seed(self, wheel10):
        a = shuffled(wheel10, random.Random(5))
        b = shuffled(wheel10, random.Random(5))
        assert a == b

    def test_shuffled_varies_with_seed(self, wheel10):
        a = shuffled(wheel10, random.Random(5))
        b = shuffled(wheel10, random.Random(6))
        assert a != b  # 18 edges: astronomically unlikely to coincide

    def test_sorted_order(self, wheel10):
        assert sorted_order(wheel10) == wheel10.edge_list()

    def test_adversarial_order_puts_heavy_last(self):
        g = book_graph(5)
        order = adversarial_heavy_edge_last_order(g)
        assert sorted(order) == g.edge_list()
        assert order[-1] == (0, 1)  # the spine has the largest t_e

    def test_adversarial_order_deterministic(self, grid4):
        assert adversarial_heavy_edge_last_order(grid4) == adversarial_heavy_edge_last_order(grid4)
