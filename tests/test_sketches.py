"""Tests for k-wise hashing, the triangle sketch, and dynamic streams."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.analysis.variance import empirical_moments
from repro.errors import ParameterError, StreamError
from repro.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    wheel_graph,
)
from repro.graph import count_triangles
from repro.sketches import KWiseHash, TriangleSketch, TriangleSketchEstimator
from repro.sketches.kwise import MERSENNE_P
from repro.streams.dynamic import DynamicEdgeStream, churn_stream


class TestKWiseHash:
    def test_validation(self):
        with pytest.raises(ParameterError):
            KWiseHash(0, random.Random(0))
        with pytest.raises(ParameterError):
            KWiseHash(2, random.Random(0)).value(-1)

    def test_deterministic_per_instance(self):
        h = KWiseHash(4, random.Random(1))
        assert h.value(42) == h.value(42)
        assert h.sign(42) == h.sign(42)

    def test_different_seeds_differ(self):
        a = KWiseHash(4, random.Random(1))
        b = KWiseHash(4, random.Random(2))
        values_a = [a.value(x) for x in range(20)]
        values_b = [b.value(x) for x in range(20)]
        assert values_a != values_b

    def test_values_in_field(self):
        h = KWiseHash(6, random.Random(3))
        for x in range(100):
            assert 0 <= h.value(x) < MERSENNE_P
            assert 0.0 <= h.unit_interval(x) < 1.0

    def test_signs_balanced(self):
        # Over many independent hashes, sign(x) must be a fair coin.
        rng = random.Random(5)
        counts = Counter()
        trials = 4000
        for _ in range(trials):
            h = KWiseHash(2, rng)
            counts[h.sign(7)] += 1
        assert abs(counts[1] / trials - 0.5) < 0.03

    def test_pairwise_sign_independence(self):
        # E[sign(x) * sign(y)] ~ 0 for x != y across independent hashes.
        rng = random.Random(6)
        total = 0
        trials = 4000
        for _ in range(trials):
            h = KWiseHash(2, rng)
            total += h.sign(3) * h.sign(11)
        assert abs(total / trials) < 0.05

    def test_independence_property(self):
        assert KWiseHash(6, random.Random(0)).independence == 6


class TestDynamicEdgeStream:
    def test_insert_only_roundtrip(self, wheel10):
        stream = DynamicEdgeStream.insert_only(wheel10.edge_list())
        assert len(stream) == wheel10.num_edges
        assert stream.net_graph() == wheel10

    def test_insert_delete_cancels(self):
        stream = DynamicEdgeStream([((0, 1), 1), ((0, 1), -1)])
        assert stream.net_edge_count == 0
        assert stream.net_graph().num_edges == 0

    def test_delete_absent_rejected(self):
        with pytest.raises(StreamError, match="delete"):
            DynamicEdgeStream([((0, 1), -1)])

    def test_double_insert_rejected(self):
        with pytest.raises(StreamError, match="insert"):
            DynamicEdgeStream([((0, 1), 1), ((1, 0), 1)])

    def test_bad_delta_rejected(self):
        with pytest.raises(StreamError, match="delta"):
            DynamicEdgeStream([((0, 1), 2)])

    def test_reinsert_after_delete_allowed(self):
        stream = DynamicEdgeStream([((0, 1), 1), ((0, 1), -1), ((0, 1), 1)])
        assert stream.net_edge_count == 1

    def test_replayable(self, triangle):
        stream = DynamicEdgeStream.insert_only(triangle.edge_list())
        assert list(stream) == list(stream)


class TestChurnStream:
    def test_net_graph_is_target(self):
        graph = wheel_graph(30)
        stream = churn_stream(graph, churn_factor=1.5, rng=random.Random(4))
        assert stream.net_graph() == graph
        assert len(stream) > graph.num_edges  # churn made it longer

    def test_zero_churn_is_permuted_inserts(self):
        graph = wheel_graph(20)
        stream = churn_stream(graph, churn_factor=0.0, rng=random.Random(1))
        assert len(stream) == graph.num_edges
        assert stream.net_graph() == graph

    def test_negative_churn_rejected(self):
        with pytest.raises(StreamError):
            churn_stream(wheel_graph(10), churn_factor=-1.0, rng=random.Random(0))

    def test_churn_deterministic(self):
        graph = wheel_graph(15)
        a = churn_stream(graph, 1.0, random.Random(9))
        b = churn_stream(graph, 1.0, random.Random(9))
        assert list(a) == list(b)


class TestTriangleSketch:
    def test_expected_moment_is_6t(self):
        # E[Z^3] = 6T: check empirically on K7 with many sketches.
        graph = complete_graph(7)
        t = count_triangles(graph)
        rng = random.Random(10)
        samples = []
        for _ in range(4000):
            sketch = TriangleSketch(rng)
            for u, v in graph.edges():
                sketch.update(u, v, 1)
            samples.append(sketch.triangle_moment())
        moments = empirical_moments(samples)
        se = moments.std / (len(samples) ** 0.5)
        assert abs(moments.mean - t) <= 4 * se

    def test_triangle_free_moment_zero_mean(self):
        graph = cycle_graph(12)
        rng = random.Random(11)
        samples = []
        for _ in range(3000):
            sketch = TriangleSketch(rng)
            for u, v in graph.edges():
                sketch.update(u, v, 1)
            samples.append(sketch.triangle_moment())
        moments = empirical_moments(samples)
        se = moments.std / (len(samples) ** 0.5)
        assert abs(moments.mean) <= 4 * se + 0.05

    def test_linearity_deletion_cancels_exactly(self):
        # The sketch of (insert all, churn in/out) equals the sketch of the
        # clean inserts with the same hash - bit-for-bit.
        graph = wheel_graph(25)
        clean = TriangleSketch(random.Random(3))
        churned = TriangleSketch(random.Random(3))  # same seed -> same hash
        for u, v in graph.edges():
            clean.update(u, v, 1)
        for (u, v), delta in churn_stream(graph, 2.0, random.Random(8)):
            churned.update(u, v, delta)
        assert clean.z == churned.z

    def test_merge(self):
        graph = complete_graph(6)
        edges = graph.edge_list()
        whole = TriangleSketch(random.Random(5))
        part_a = TriangleSketch(random.Random(5))
        part_b = TriangleSketch(random.Random(5))
        # Same seed -> identical hash; drain the rng identically first.
        for u, v in edges:
            whole.update(u, v, 1)
        for u, v in edges[:7]:
            part_a.update(u, v, 1)
        for u, v in edges[7:]:
            part_b.update(u, v, 1)
        part_a.merge(part_b)
        assert part_a.z == whole.z


class TestTriangleSketchEstimator:
    def test_validation(self):
        with pytest.raises(ParameterError):
            TriangleSketchEstimator(0, random.Random(0))
        with pytest.raises(ParameterError):
            TriangleSketchEstimator(10, random.Random(0), median_groups=3)

    def test_one_pass_and_constant_space_per_copy(self):
        graph = complete_graph(10)
        stream = DynamicEdgeStream.insert_only(graph.edge_list())
        est = TriangleSketchEstimator(50, random.Random(1))
        result = est.estimate(stream)
        assert result.passes_used == 1
        assert result.space_words_peak == 7 * 50

    def test_accuracy_on_dense_graph(self):
        # K12: m^3/T^2 = 66^3/220^2 ~ 6 -> a few thousand copies suffice.
        graph = complete_graph(12)
        t = count_triangles(graph)
        stream = DynamicEdgeStream.insert_only(graph.edge_list())
        est = TriangleSketchEstimator(3000, random.Random(2), median_groups=5)
        result = est.estimate(stream)
        assert abs(result.estimate - t) / t < 0.35

    def test_churn_invariance(self):
        # Same seed => same hashes => identical estimate on clean vs
        # churned streams with the same net graph.
        graph = barabasi_albert_graph(40, 4, random.Random(3))
        clean = DynamicEdgeStream.insert_only(graph.edge_list())
        churned = churn_stream(graph, 2.0, random.Random(7))
        a = TriangleSketchEstimator(40, random.Random(5)).estimate(clean)
        b = TriangleSketchEstimator(40, random.Random(5)).estimate(churned)
        assert a.estimate == b.estimate

    def test_deterministic(self):
        graph = complete_graph(8)
        stream = DynamicEdgeStream.insert_only(graph.edge_list())
        a = TriangleSketchEstimator(30, random.Random(6)).estimate(stream)
        b = TriangleSketchEstimator(30, random.Random(6)).estimate(stream)
        assert a.estimate == b.estimate
