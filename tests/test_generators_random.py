"""Tests for random generators: ER, Chung-Lu, BA, Watts-Strogatz, planted."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.generators import (
    barabasi_albert_graph,
    chung_lu_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    planted_triangles_graph,
    watts_strogatz_graph,
)
from repro.generators.planted import planted_clique_triangles
from repro.generators.random_graphs import power_law_weights
from repro.graph import count_triangles, degeneracy


class TestErdosRenyi:
    def test_gnm_exact_edge_count(self):
        g = erdos_renyi_gnm(50, 200, random.Random(0))
        assert g.num_vertices == 50
        assert g.num_edges == 200

    def test_gnm_dense_request(self):
        g = erdos_renyi_gnm(10, 40, random.Random(0))
        assert g.num_edges == 40

    def test_gnm_full(self):
        g = erdos_renyi_gnm(8, 28, random.Random(0))
        assert g.num_edges == 28  # complete graph

    def test_gnm_validation(self):
        with pytest.raises(GraphError):
            erdos_renyi_gnm(5, 11, random.Random(0))
        with pytest.raises(GraphError):
            erdos_renyi_gnm(0, 0, random.Random(0))

    def test_gnm_deterministic(self):
        a = erdos_renyi_gnm(30, 80, random.Random(5))
        b = erdos_renyi_gnm(30, 80, random.Random(5))
        assert a == b

    def test_gnp_extremes(self):
        assert erdos_renyi_gnp(10, 0.0, random.Random(0)).num_edges == 0
        assert erdos_renyi_gnp(10, 1.0, random.Random(0)).num_edges == 45

    def test_gnp_validation(self):
        with pytest.raises(GraphError):
            erdos_renyi_gnp(5, 1.5, random.Random(0))

    def test_gnp_edge_count_concentrates(self):
        n, p = 200, 0.1
        expected = p * n * (n - 1) / 2
        counts = [erdos_renyi_gnp(n, p, random.Random(s)).num_edges for s in range(5)]
        mean = sum(counts) / len(counts)
        assert abs(mean - expected) / expected < 0.1


class TestChungLu:
    def test_power_law_weights_shape(self):
        w = power_law_weights(100, exponent=2.5, max_weight=50.0)
        assert len(w) == 100
        assert w == sorted(w, reverse=True)
        assert max(w) <= 50.0

    def test_power_law_validation(self):
        with pytest.raises(GraphError):
            power_law_weights(10, exponent=2.0, max_weight=5.0)
        with pytest.raises(GraphError):
            power_law_weights(0, exponent=2.5, max_weight=5.0)

    def test_chung_lu_validation(self):
        with pytest.raises(GraphError):
            chung_lu_graph([], random.Random(0))
        with pytest.raises(GraphError):
            chung_lu_graph([1.0, -2.0], random.Random(0))

    def test_chung_lu_zero_weights(self):
        g = chung_lu_graph([0.0, 0.0, 0.0], random.Random(0))
        assert g.num_edges == 0
        assert g.num_vertices == 3

    def test_chung_lu_degrees_track_weights(self):
        # Vertex 0 has weight 30, the rest weight ~1: its degree must
        # dominate.
        weights = [30.0] + [1.0] * 200
        degs = []
        for seed in range(5):
            g = chung_lu_graph(weights, random.Random(seed))
            degs.append(g.degree(0))
        mean_deg = sum(degs) / len(degs)
        expected = sum(min(1.0, 30.0 * 1.0 / sum(weights)) for _ in range(200))
        assert abs(mean_deg - expected) / expected < 0.5

    def test_chung_lu_deterministic(self):
        w = power_law_weights(60, 2.5, 8.0)
        assert chung_lu_graph(w, random.Random(4)) == chung_lu_graph(w, random.Random(4))


class TestBarabasiAlbert:
    def test_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 0, random.Random(0))
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3, random.Random(0))

    def test_edge_count_closed_form(self):
        n, k = 100, 4
        g = barabasi_albert_graph(n, k, random.Random(1))
        assert g.num_edges == k * (k + 1) // 2 + k * (n - k - 1)

    def test_degeneracy_at_most_k(self):
        for seed in range(4):
            g = barabasi_albert_graph(80, 5, random.Random(seed))
            assert degeneracy(g) <= 5

    def test_contains_triangles(self):
        g = barabasi_albert_graph(100, 4, random.Random(2))
        assert count_triangles(g) > 0

    def test_deterministic(self):
        a = barabasi_albert_graph(50, 3, random.Random(9))
        b = barabasi_albert_graph(50, 3, random.Random(9))
        assert a == b


class TestWattsStrogatz:
    def test_validation(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(6, 3, 0.1, random.Random(0))  # n <= 2k
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 2, 1.5, random.Random(0))

    def test_beta_zero_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 3, 0.0, random.Random(0))
        assert g.num_edges == 60
        assert all(g.degree(v) == 6 for v in g.vertices())

    def test_ring_lattice_triangle_count(self):
        # k=2 ring lattice: each vertex closes wedges with its 2-hop
        # neighbors; T = n * (k * (k - 1)) / 2... verified by formula n*k*(k-1)/2 * ...
        # Use the known closed form T = n * k * (k - 1) * 3 / 6 / ... simply
        # compare against the independent exact counter on a small instance.
        g = watts_strogatz_graph(12, 2, 0.0, random.Random(0))
        # each vertex participates in 3 triangles for k=2 -> T = 12*3/3 = 12
        assert count_triangles(g) == 12

    def test_rewiring_preserves_simplicity(self):
        g = watts_strogatz_graph(40, 3, 0.4, random.Random(7))
        # Graph invariants (no duplicate/self-loop) enforced by Graph itself;
        # sanity: edge count close to n*k.
        assert abs(g.num_edges - 120) <= 6

    def test_high_clustering_at_low_beta(self):
        from repro.graph import global_clustering_coefficient

        lattice = watts_strogatz_graph(100, 4, 0.0, random.Random(1))
        assert global_clustering_coefficient(lattice) > 0.5


class TestPlanted:
    def test_exact_triangle_count(self):
        g = planted_triangles_graph(base_edges=40, triangles=15)
        assert count_triangles(g) == 15

    def test_zero_triangles(self):
        g = planted_triangles_graph(base_edges=40, triangles=0)
        assert count_triangles(g) == 0

    def test_validation(self):
        with pytest.raises(GraphError):
            planted_triangles_graph(base_edges=3, triangles=1)
        with pytest.raises(GraphError):
            planted_triangles_graph(base_edges=10, triangles=-1)
        with pytest.raises(GraphError):
            planted_triangles_graph(base_edges=10, triangles=11)

    def test_odd_base_rounded_even(self):
        g = planted_triangles_graph(base_edges=5, triangles=0)
        assert count_triangles(g) == 0
        assert g.num_edges == 6  # rounded-up even cycle

    def test_kappa_clique_adds_triangles(self):
        g = planted_triangles_graph(base_edges=20, triangles=5, kappa_clique=4)
        assert degeneracy(g) == 4
        assert count_triangles(g) == 5 + planted_clique_triangles(4)

    def test_clique_triangle_helper(self):
        assert planted_clique_triangles(0) == 0
        assert planted_clique_triangles(2) == 1  # K_3
        assert planted_clique_triangles(3) == 4  # K_4

    def test_random_placement_same_counts(self):
        g = planted_triangles_graph(base_edges=30, triangles=10, rng=random.Random(3))
        assert count_triangles(g) == 10

    def test_low_degeneracy(self):
        g = planted_triangles_graph(base_edges=50, triangles=25)
        assert degeneracy(g) == 2
