"""Tests for structured generators: closed-form n, m, T, kappa."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.generators import (
    book_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    friendship_graph,
    grid_graph,
    path_graph,
    star_graph,
    triangulated_grid_graph,
    wheel_graph,
)
from repro.graph import count_triangles, degeneracy, per_edge_triangle_counts


class TestValidation:
    @pytest.mark.parametrize(
        "factory,bad",
        [
            (path_graph, 0),
            (cycle_graph, 2),
            (star_graph, 1),
            (wheel_graph, 3),
            (book_graph, 0),
            (friendship_graph, 0),
            (complete_graph, 0),
        ],
    )
    def test_too_small_rejected(self, factory, bad):
        with pytest.raises(GraphError):
            factory(bad)

    def test_bipartite_validation(self):
        with pytest.raises(GraphError):
            complete_bipartite_graph(0, 3)

    def test_grid_validation(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)
        with pytest.raises(GraphError):
            triangulated_grid_graph(1, 5)


class TestClosedForms:
    @pytest.mark.parametrize("n", [1, 2, 10])
    def test_path(self, n):
        g = path_graph(n)
        assert g.num_vertices == n
        assert g.num_edges == n - 1

    @pytest.mark.parametrize("n", [3, 8])
    def test_cycle(self, n):
        g = cycle_graph(n)
        assert g.num_vertices == n
        assert g.num_edges == n
        assert count_triangles(g) == (1 if n == 3 else 0)

    @pytest.mark.parametrize("n", [2, 9])
    def test_star(self, n):
        g = star_graph(n)
        assert g.num_vertices == n
        assert g.num_edges == n - 1
        assert g.degree(0) == n - 1

    @pytest.mark.parametrize("n", [5, 12, 100])
    def test_wheel(self, n):
        g = wheel_graph(n)
        assert g.num_vertices == n
        assert g.num_edges == 2 * (n - 1)
        assert count_triangles(g) == n - 1
        assert degeneracy(g) == 3

    @pytest.mark.parametrize("pages", [1, 7, 30])
    def test_book(self, pages):
        g = book_graph(pages)
        assert g.num_vertices == pages + 2
        assert g.num_edges == 2 * pages + 1
        assert count_triangles(g) == pages
        te = per_edge_triangle_counts(g)
        assert te[(0, 1)] == pages

    @pytest.mark.parametrize("blades", [1, 5, 20])
    def test_friendship(self, blades):
        g = friendship_graph(blades)
        assert g.num_vertices == 2 * blades + 1
        assert g.num_edges == 3 * blades
        assert count_triangles(g) == blades
        te = per_edge_triangle_counts(g)
        assert all(count == 1 for count in te.values())

    @pytest.mark.parametrize("n", [1, 4, 9])
    def test_complete(self, n):
        g = complete_graph(n)
        assert g.num_vertices == n
        assert g.num_edges == n * (n - 1) // 2

    @pytest.mark.parametrize("p,q", [(2, 3), (4, 4)])
    def test_complete_bipartite(self, p, q):
        g = complete_bipartite_graph(p, q)
        assert g.num_vertices == p + q
        assert g.num_edges == p * q
        assert count_triangles(g) == 0

    @pytest.mark.parametrize("rows,cols", [(2, 2), (4, 7)])
    def test_grid(self, rows, cols):
        g = grid_graph(rows, cols)
        assert g.num_vertices == rows * cols
        assert g.num_edges == rows * (cols - 1) + cols * (rows - 1)
        assert count_triangles(g) == 0

    @pytest.mark.parametrize("rows,cols", [(2, 2), (5, 8)])
    def test_triangulated_grid(self, rows, cols):
        g = triangulated_grid_graph(rows, cols)
        cells = (rows - 1) * (cols - 1)
        assert g.num_edges == rows * (cols - 1) + cols * (rows - 1) + cells
        assert count_triangles(g) == 2 * cells
