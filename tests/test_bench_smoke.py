"""Opt-in perf smoke gate: ``run_bench_suite.py --smoke`` must pass.

Wired into the tier-1 flow but **skipped unless** ``REPRO_SMOKE=1``:
wall-clock speedup assertions are only meaningful on a quiet machine, so
the gate is armed explicitly (locally or by a dedicated CI job) instead
of flaking every shared-runner test run.  The gate itself re-measures the
tiny-scale E9 engine sweep, the sharded executor comparison, and the
fused-vs-per-plan sweep comparison; it asserts seed-for-seed parity (and
the fused engine's strict sweep-count reduction) unconditionally, and
fails if either engine speedup regressed to below half of the last
committed ``BENCH_engine.json`` entry or if the fused engine measured
slower than the unfused sharded engine on the same sweep.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


@pytest.mark.skipif(
    os.environ.get("REPRO_SMOKE", "") != "1",
    reason="perf smoke gate is opt-in: set REPRO_SMOKE=1 to arm it",
)
def test_bench_suite_smoke_gate():
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "run_bench_suite.py"), "--smoke"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"--smoke gate failed (exit {proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
    )
