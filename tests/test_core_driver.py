"""Tests for the driver: config validation, guessing loop, end-to-end API."""

from __future__ import annotations

import random

import pytest

from repro import EstimatorConfig, TriangleCountEstimator
from repro.errors import ParameterError, SpaceBudgetExceeded
from repro.generators import cycle_graph, path_graph, triangulated_grid_graph, wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream
from repro.streams.transforms import shuffled


class TestConfigValidation:
    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1])
    def test_epsilon_range(self, epsilon):
        with pytest.raises(ParameterError):
            EstimatorConfig(epsilon=epsilon)

    def test_repetitions_positive(self):
        with pytest.raises(ParameterError):
            EstimatorConfig(repetitions=0)

    def test_kappa_positive(self, wheel10):
        stream = InMemoryEdgeStream.from_graph(wheel10)
        with pytest.raises(ParameterError):
            TriangleCountEstimator().estimate(stream, kappa=0)

    def test_t_hint_positive(self, wheel10):
        stream = InMemoryEdgeStream.from_graph(wheel10)
        cfg = EstimatorConfig(t_hint=-5.0)
        with pytest.raises(ParameterError):
            TriangleCountEstimator(cfg).estimate(stream, kappa=3)

    def test_config_property_echoes(self):
        cfg = EstimatorConfig(epsilon=0.5)
        assert TriangleCountEstimator(cfg).config is cfg


class TestEdgeCases:
    def test_empty_stream(self):
        result = TriangleCountEstimator().estimate(InMemoryEdgeStream([]), kappa=1)
        assert result.estimate == 0.0
        assert result.rounds == []
        assert result.passes_total == 0

    def test_triangle_free_returns_near_zero(self):
        graph = cycle_graph(40)
        stream = InMemoryEdgeStream.from_graph(graph)
        result = TriangleCountEstimator(EstimatorConfig(seed=1, repetitions=3)).estimate(
            stream, kappa=2
        )
        assert result.estimate == 0.0
        # The guess walked all the way down without acceptance.
        assert all(not r.accepted for r in result.rounds)

    def test_path_graph(self):
        graph = path_graph(30)
        stream = InMemoryEdgeStream.from_graph(graph)
        result = TriangleCountEstimator(EstimatorConfig(seed=1, repetitions=3)).estimate(
            stream, kappa=1
        )
        assert result.estimate == 0.0


class TestGuessingLoop:
    def test_guesses_halve(self):
        graph = wheel_graph(200)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        result = TriangleCountEstimator(EstimatorConfig(seed=3, repetitions=3)).estimate(
            stream, kappa=3
        )
        guesses = [r.t_guess for r in result.rounds]
        assert guesses[0] == 2.0 * graph.num_edges * 3
        for previous, current in zip(guesses, guesses[1:]):
            assert current == pytest.approx(previous / 2)

    def test_accepted_round_is_last(self):
        graph = wheel_graph(200)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        result = TriangleCountEstimator(EstimatorConfig(seed=3, repetitions=3)).estimate(
            stream, kappa=3
        )
        assert result.accepted_round is result.rounds[-1]
        assert result.accepted_round.median_estimate == result.estimate

    def test_accepted_guess_near_truth(self):
        graph = wheel_graph(200)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        result = TriangleCountEstimator(EstimatorConfig(seed=3, repetitions=3)).estimate(
            stream, kappa=3
        )
        accepted = result.accepted_round
        assert accepted is not None
        # Acceptance fires once the guess falls within a small factor of T.
        assert t / 4 <= accepted.t_guess <= 16 * t

    def test_t_hint_skips_search(self):
        graph = wheel_graph(200)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        cfg = EstimatorConfig(seed=3, repetitions=3, t_hint=float(t))
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert len(result.rounds) == 1
        assert result.rounds[0].accepted

    def test_max_rounds_cap(self):
        graph = cycle_graph(50)
        stream = InMemoryEdgeStream.from_graph(graph)
        cfg = EstimatorConfig(seed=1, repetitions=1, max_rounds=3)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=2)
        assert len(result.rounds) <= 3


class TestEndToEndAccuracy:
    @pytest.mark.parametrize(
        "graph_factory,kappa,tolerance",
        [
            (lambda: wheel_graph(600), 3, 0.30),
            (lambda: triangulated_grid_graph(16, 16), 3, 0.35),
        ],
    )
    def test_estimates_within_tolerance(self, graph_factory, kappa, tolerance):
        graph = graph_factory()
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(8)))
        result = TriangleCountEstimator(EstimatorConfig(seed=5)).estimate(stream, kappa=kappa)
        assert abs(result.estimate - t) / t < tolerance

    def test_determinism(self):
        graph = wheel_graph(150)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        cfg = EstimatorConfig(seed=42, repetitions=3)
        r1 = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        r2 = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert r1.estimate == r2.estimate
        assert [g.t_guess for g in r1.rounds] == [g.t_guess for g in r2.rounds]

    def test_overestimated_kappa_still_works(self):
        # The promise may exceed the true degeneracy; accuracy must hold
        # (space just grows proportionally).
        graph = wheel_graph(300)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        result = TriangleCountEstimator(EstimatorConfig(seed=5, repetitions=3)).estimate(
            stream, kappa=12
        )
        assert abs(result.estimate - t) / t < 0.35

    def test_passes_are_multiple_of_runs(self):
        graph = wheel_graph(150)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        cfg = EstimatorConfig(seed=42, repetitions=3)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        runs = sum(len(r.runs) for r in result.rounds)
        assert result.passes_total <= 6 * runs
        assert all(run.passes_used <= 6 for r in result.rounds for run in r.runs)


class TestSpaceBudget:
    def test_budget_abort_raises(self):
        graph = wheel_graph(300)
        stream = InMemoryEdgeStream.from_graph(graph)
        cfg = EstimatorConfig(seed=1, repetitions=1, space_budget_words=10)
        with pytest.raises(SpaceBudgetExceeded):
            TriangleCountEstimator(cfg).estimate(stream, kappa=3)

    def test_generous_budget_passes(self):
        graph = wheel_graph(100)
        stream = InMemoryEdgeStream.from_graph(graph)
        cfg = EstimatorConfig(seed=1, repetitions=1, space_budget_words=10_000_000)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert result.space_words_peak <= 10_000_000
