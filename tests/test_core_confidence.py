"""Tests for empirical confidence intervals."""

from __future__ import annotations

import pytest

from repro.core.confidence import (
    ConfidenceInterval,
    estimate_with_interval,
    interval_from_estimates,
    quantile,
)
from repro.core.driver import EstimatorConfig
from repro.errors import ParameterError
from repro.generators import cycle_graph, wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream


class TestQuantile:
    def test_median(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 9.0

    def test_interpolation(self):
        assert quantile([0.0, 10.0], 0.25) == 2.5

    def test_single_value(self):
        assert quantile([7.0], 0.3) == 7.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            quantile([], 0.5)
        with pytest.raises(ParameterError):
            quantile([1.0], 1.5)


class TestInterval:
    def test_ordering_enforced(self):
        with pytest.raises(ParameterError):
            ConfidenceInterval(point=5.0, low=6.0, high=7.0, level=0.9)

    def test_width_and_contains(self):
        ci = ConfidenceInterval(point=5.0, low=4.0, high=7.0, level=0.9)
        assert ci.width == 3.0
        assert ci.contains(4.0) and ci.contains(7.0)
        assert not ci.contains(7.5)

    def test_from_estimates_median_point(self):
        ci = interval_from_estimates([10.0, 20.0, 30.0, 40.0, 50.0], level=0.8)
        assert ci.point == 30.0
        assert ci.low <= 20.0
        assert ci.high >= 40.0

    def test_needs_three(self):
        with pytest.raises(ParameterError):
            interval_from_estimates([1.0, 2.0])

    def test_level_validation(self):
        with pytest.raises(ParameterError):
            interval_from_estimates([1.0, 2.0, 3.0], level=1.0)

    def test_interval_narrows_with_level(self):
        values = [float(x) for x in range(100)]
        wide = interval_from_estimates(values, level=0.95)
        narrow = interval_from_estimates(values, level=0.5)
        assert narrow.width < wide.width


class TestEstimateWithInterval:
    def test_wheel_interval_contains_truth(self):
        graph = wheel_graph(300)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph)
        result, ci = estimate_with_interval(
            stream, kappa=3, config=EstimatorConfig(seed=4, repetitions=7)
        )
        assert result.estimate == ci.point
        assert ci.contains(t) or abs(ci.point - t) / t < 0.35

    def test_triangle_free_degenerate_interval(self):
        graph = cycle_graph(30)
        stream = InMemoryEdgeStream.from_graph(graph)
        result, ci = estimate_with_interval(
            stream, kappa=2, config=EstimatorConfig(seed=1, repetitions=3)
        )
        assert result.estimate == 0.0
        assert ci.low == ci.high == 0.0

    def test_requires_three_repetitions(self):
        graph = wheel_graph(50)
        stream = InMemoryEdgeStream.from_graph(graph)
        with pytest.raises(ParameterError, match="repetitions"):
            estimate_with_interval(
                stream, kappa=3, config=EstimatorConfig(seed=1, repetitions=2)
            )
