"""Tests for repro.graph.arboricity: the sandwich alpha <= kappa <= 2*alpha - 1."""

from __future__ import annotations

import math

import pytest

from repro.generators import complete_graph, cycle_graph, path_graph, wheel_graph
from repro.graph import Graph, arboricity_bounds, degeneracy, nash_williams_lower_bound


class TestNashWilliams:
    def test_empty_graph(self):
        assert nash_williams_lower_bound(Graph()) == 0

    def test_single_edge(self):
        assert nash_williams_lower_bound(Graph(edges=[(0, 1)])) == 1

    def test_tree_has_arboricity_one(self):
        assert nash_williams_lower_bound(path_graph(20)) == 1

    def test_cycle_needs_two_forests(self):
        # m = n on n-1 available tree edges per forest -> ceil(n/(n-1)) = 2.
        assert nash_williams_lower_bound(cycle_graph(8)) == 2

    @pytest.mark.parametrize("n", [4, 6, 10])
    def test_clique_closed_form(self, n):
        # alpha(K_n) = ceil(n/2); Nash-Williams on the full graph is tight.
        assert nash_williams_lower_bound(complete_graph(n)) == math.ceil(n / 2)


class TestBounds:
    def test_interval_validity(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            b = arboricity_bounds(g)
            assert b.lower <= b.upper, name

    def test_sandwich_with_degeneracy(self, all_fixture_graphs):
        # alpha <= kappa and kappa <= 2*alpha - 1, i.e.
        # ceil((kappa+1)/2) <= alpha: our interval must respect both.
        for name, g in all_fixture_graphs.items():
            if g.num_edges == 0:
                continue
            kappa = degeneracy(g)
            b = arboricity_bounds(g)
            assert b.upper <= kappa or b.upper == b.lower, name
            assert b.lower >= math.ceil((kappa + 1) / 2), name

    def test_clique_exact(self):
        b = arboricity_bounds(complete_graph(9))
        assert b.lower == 5  # ceil(9/2)

    def test_wheel(self):
        b = arboricity_bounds(wheel_graph(20))
        assert b.lower == 2
        assert b.upper == 3

    def test_empty_interval_rejected(self):
        from repro.graph.arboricity import ArboricityBounds

        with pytest.raises(ValueError):
            ArboricityBounds(lower=3, upper=2)

    def test_is_exact_flag(self):
        from repro.graph.arboricity import ArboricityBounds

        assert ArboricityBounds(2, 2).is_exact
        assert not ArboricityBounds(2, 3).is_exact
