"""Regression tests for :func:`repro.streams.dynamic.churn_stream`.

Pins the two historical bugs: the churn count was computed with the
float fudge ``int(churn_factor * m + 0.999999)`` instead of
``math.ceil`` (undercounting by one when ``churn_factor * m`` sits just
above an integer), and a rejection-sampling shortfall on dense graphs
returned silently with less churn than requested.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import StreamError
from repro.graph.adjacency import Graph
from repro.streams.dynamic import churn_stream


def _path_graph(num_edges: int) -> Graph:
    return Graph(edges=[(i, i + 1) for i in range(num_edges)])


def _complete_graph(n: int) -> Graph:
    return Graph(edges=list(itertools.combinations(range(n), 2)))


class TestChurnCount:
    """churn_count must be exactly ceil(churn_factor * m)."""

    def _requested(self, churn_factor: float) -> int:
        # m = 10 on a sparse path with plenty of vertex headroom: the
        # sampler always delivers, so requested == delivered.
        stream = churn_stream(
            _path_graph(10), churn_factor, random.Random(0), num_vertices=100
        )
        assert stream.churn_delivered == stream.churn_requested
        # Each churn edge contributes one insert and one delete.
        assert len(stream) == 10 + 2 * stream.churn_requested
        return stream.churn_requested

    def test_exactly_integral(self):
        assert self._requested(0.5) == 5  # 0.5 * 10 is exactly 5.0

    def test_just_below_an_integer(self):
        assert self._requested(0.4999999) == 5  # ceil(4.999999)

    def test_just_above_an_integer(self):
        # ceil(5.000000001) = 6; the old float fudge truncated this to 5.
        assert self._requested(0.5000000001) == 6

    def test_tiny_positive_factor_rounds_up_to_one(self):
        # ceil(1e-7) = 1; the old fudge delivered zero churn.
        assert self._requested(0.00000001) == 1

    def test_zero_factor_means_no_churn(self):
        assert self._requested(0.0) == 0


class TestChurnShortfall:
    """A dry rejection sampler must surface, not silently under-deliver."""

    def test_complete_graph_raises_by_default(self):
        # K8 has no non-edges at all within its own vertex range.
        with pytest.raises(StreamError, match="churn shortfall"):
            churn_stream(_complete_graph(8), 1.0, random.Random(0))

    def test_near_complete_graph_raises_and_names_the_shortfall(self):
        # K8 minus one edge: exactly one candidate non-edge for 27 requested.
        edges = list(itertools.combinations(range(8), 2))[1:]
        with pytest.raises(StreamError, match="requested 27 .* only 1 "):
            churn_stream(Graph(edges=edges), 1.0, random.Random(0))

    def test_non_strict_records_the_delivered_count(self):
        graph = _complete_graph(8)
        stream = churn_stream(graph, 1.0, random.Random(0), strict=False)
        assert stream.churn_requested == 28
        assert stream.churn_delivered == 0
        assert len(stream) == 28  # all inserts, no churn pairs
        assert stream.net_graph().edge_list() == graph.edge_list()

    def test_widening_the_vertex_range_resolves_the_shortfall(self):
        stream = churn_stream(
            _complete_graph(8), 1.0, random.Random(0), num_vertices=64
        )
        assert stream.churn_delivered == stream.churn_requested == 28
        assert stream.net_graph().edge_list() == _complete_graph(8).edge_list()
