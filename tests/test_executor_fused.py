"""Fused sweep engine parity: bit-identical estimates, strictly fewer sweeps.

The fused executor (:func:`repro.core.executor.run_plans`) drives a round's
independent pass plans through one shared tape sweep, and the estimator
fuses pass 4 (closure watch) with pass 5 (assignment incident collection).
These tests pin the two contracts the engine is built on:

* **parity** - for the same seeds, estimates (and every sampling-derived
  diagnostic) are bit-identical across ``fuse`` on/off, every engine, and
  workers in {1, 2, 4}, including the shared-memory and pickled block
  transports;
* **fewer sweeps** - fused runs consume strictly fewer physical tape
  sweeps than unfused runs whenever a round finds wedges, while logical
  pass accounting (the paper's budget) is unchanged.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import engine, executor
from repro.core.estimator import run_single_estimate
from repro.core.kernels import (
    DegreeCountPlan,
    IncidentCollectPlan,
    PackedKeyCountPlan,
    PositionCollectPlan,
    WatchKeyPlan,
)
from repro.core.parallel import run_parallel_estimates
from repro.core.params import ParameterPlan
from repro.core.driver import EstimatorConfig, TriangleCountEstimator
from repro.errors import PassBudgetExceeded
from repro.generators import planted_triangles_graph, wheel_graph
from repro.graph import count_triangles, degeneracy
from repro.streams import InMemoryEdgeStream, PassScheduler
from repro.streams import shm
from repro.streams.file import FileEdgeStream
from repro.streams.transforms import shuffled

WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(autouse=True)
def _small_task_batches(monkeypatch):
    """Force multi-task shards even on tiny test streams."""
    monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 32)


def _stream_and_plan(graph, order_seed=11, epsilon=0.25):
    stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(order_seed)))
    kappa = max(1, degeneracy(graph))
    t = float(max(1, count_triangles(graph)))
    plan = ParameterPlan.build(graph.num_vertices, graph.num_edges, kappa, t, epsilon)
    return stream, plan


def _sampling_fields(result):
    """Every result field derived from the sampling process (not accounting).

    ``passes_used`` / ``sweeps_used`` / ``space_words_peak`` legitimately
    differ between fused and unfused execution (fusing trades speculative
    buffer space for sweeps); everything statistical must not.
    """
    return (
        result.estimate,
        result.r,
        result.ell,
        result.d_r,
        result.wedges_closed,
        result.assigned_hits,
        result.distinct_candidate_triangles,
    )


class TestFusedParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_single_runner_bit_identical(self, workers):
        stream, plan = _stream_and_plan(wheel_graph(120))
        with engine.engine_overrides("chunked", 67, workers, False):
            unfused = run_single_estimate(stream, plan, random.Random(1))
        with engine.engine_overrides("chunked", 67, workers, True):
            fused = run_single_estimate(stream, plan, random.Random(1))
        assert _sampling_fields(fused) == _sampling_fields(unfused)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parallel_runner_bit_identical(self, workers):
        graph = planted_triangles_graph(150, 60, kappa_clique=6, rng=random.Random(7))
        stream, plan = _stream_and_plan(graph)
        rngs = lambda: [random.Random(s) for s in range(5)]  # noqa: E731
        with engine.engine_overrides("chunked", 53, workers, False):
            unfused = run_parallel_estimates(stream, plan, rngs())
        with engine.engine_overrides("chunked", 53, workers, True):
            fused = run_parallel_estimates(stream, plan, rngs())
        assert [_sampling_fields(r) for r in fused] == [
            _sampling_fields(r) for r in unfused
        ]

    def test_python_engine_fused_matches_chunked_fused(self):
        stream, plan = _stream_and_plan(wheel_graph(100))
        with engine.engine_overrides("python", None, None, True):
            py = run_single_estimate(stream, plan, random.Random(3))
        with engine.engine_overrides("chunked", 41, 1, True):
            chunked = run_single_estimate(stream, plan, random.Random(3))
        # Same engine semantics end to end: full dataclass equality,
        # including the pass/sweep accounting.
        assert py == chunked

    def test_driver_fuse_config_end_to_end(self):
        graph = wheel_graph(150)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(0)))
        base = dict(seed=7, repetitions=3, t_hint=float(t), engine_mode="chunked")
        unfused = TriangleCountEstimator(
            EstimatorConfig(fuse=False, **base)
        ).estimate(stream, kappa=3)
        fused = TriangleCountEstimator(
            EstimatorConfig(fuse=True, **base)
        ).estimate(stream, kappa=3)
        assert fused.estimate == unfused.estimate
        assert [r.median_estimate for r in fused.rounds] == [
            r.median_estimate for r in unfused.rounds
        ]
        assert fused.passes_total == unfused.passes_total
        assert fused.sweeps_total < unfused.sweeps_total

    def test_file_stream_fused_sharded(self, tmp_path):
        graph = wheel_graph(90)
        order = shuffled(graph, random.Random(2))
        path = tmp_path / "edges.txt"
        path.write_text(
            "\n".join(f"{u} {v}" for u, v in order) + "\n", encoding="utf-8"
        )
        plan = ParameterPlan.build(
            graph.num_vertices, graph.num_edges, 3, float(count_triangles(graph)), 0.25
        )
        with engine.engine_overrides("chunked", 31, 1, False):
            ref = run_single_estimate(FileEdgeStream(path), plan, random.Random(4))
        with engine.engine_overrides("chunked", 31, 2, True):
            fused = run_single_estimate(FileEdgeStream(path), plan, random.Random(4))
        assert _sampling_fields(fused) == _sampling_fields(ref)


class TestSweepAccounting:
    def test_fused_run_uses_strictly_fewer_sweeps(self):
        # The wheel is triangle-rich: pass 4 finds wedges, so the fused
        # pass-4/5 group saves exactly one sweep per run.
        stream, plan = _stream_and_plan(wheel_graph(120))
        with engine.engine_overrides("chunked", 67, 1, False):
            unfused = run_single_estimate(stream, plan, random.Random(1))
        with engine.engine_overrides("chunked", 67, 1, True):
            fused = run_single_estimate(stream, plan, random.Random(1))
        assert unfused.sweeps_used == unfused.passes_used
        assert fused.passes_used == unfused.passes_used
        assert fused.sweeps_used < unfused.sweeps_used

    def test_candidate_free_round_never_costs_extra_sweeps(self):
        # A cycle has wedges but no triangle ever closes: unfused skips
        # passes 5-6 (4 passes, 4 sweeps) while the fused group charges
        # the speculative pass 5 - the sweep count must still tie.
        from repro.generators import cycle_graph

        graph = cycle_graph(40)
        stream = InMemoryEdgeStream.from_graph(graph)
        plan = ParameterPlan.build(40, 40, 2, 10.0, 0.3)
        with engine.engine_overrides("chunked", 16, 1, False):
            unfused = run_single_estimate(stream, plan, random.Random(1))
        with engine.engine_overrides("chunked", 16, 1, True):
            fused = run_single_estimate(stream, plan, random.Random(1))
        assert fused.estimate == unfused.estimate == 0.0
        assert unfused.passes_used == unfused.sweeps_used == 4
        assert fused.sweeps_used == 4  # no extra traversal, ever
        assert fused.passes_used <= 5  # at most the speculative pass 5

    def test_no_wedges_falls_back_to_plain_pass4(self):
        # No apex sampled at all: nothing to speculate on, so the fused
        # path must not charge the pass-5 logical pass either.
        from repro.core.estimator import pass45_closure_and_collect
        from repro.streams import SpaceMeter

        stream = InMemoryEdgeStream([(0, 1), (2, 3)], validate=False)
        scheduler = PassScheduler(stream, max_passes=6)
        with engine.engine_overrides("chunked", 2, 1, True):
            candidates, incident = pass45_closure_and_collect(
                scheduler, [[(0, 1)]], [[0]], [[None]], SpaceMeter(), chunked=True
            )
        assert candidates == [[None]]
        assert incident is None
        assert scheduler.passes_used == 1
        assert scheduler.sweeps_used == 1

    def test_scheduler_counts_fused_groups(self):
        stream = InMemoryEdgeStream([(i, i + 1) for i in range(100)], validate=False)
        scheduler = PassScheduler(stream, max_passes=3)
        plans = [
            DegreeCountPlan(np.array([0, 1], dtype=np.int64)),
            WatchKeyPlan([(0, 1)]),
            PackedKeyCountPlan(np.array([1], dtype=np.uint64)),
        ]
        executor.run_plans(scheduler, plans, chunk_size=8, workers=1)
        assert scheduler.passes_used == 3
        assert scheduler.sweeps_used == 1

    def test_fused_group_respects_pass_budget(self):
        stream = InMemoryEdgeStream([(0, 1), (1, 2)], validate=False)
        scheduler = PassScheduler(stream, max_passes=1)
        plans = [
            DegreeCountPlan(np.array([0], dtype=np.int64)),
            DegreeCountPlan(np.array([1], dtype=np.int64)),
        ]
        with pytest.raises(PassBudgetExceeded):
            executor.run_plans(scheduler, plans, chunk_size=8, workers=1)


class TestRunPlansMerges:
    def _scheduler(self, edges, **kwargs):
        return PassScheduler(InMemoryEdgeStream(edges, validate=False), **kwargs)

    def _edges(self):
        rng = random.Random(0)
        return [(rng.randrange(60), 60 + rng.randrange(60)) for _ in range(400)]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_per_plan_execution(self, workers):
        edges = self._edges()
        ids = np.arange(0, 120, 3, dtype=np.int64)
        positions = np.array([0, 31, 32, 399, 200, 200], dtype=np.int64)

        def plans():
            return [DegreeCountPlan(ids), PositionCollectPlan(positions)]

        per_plan = [
            executor.run_plan(self._scheduler(edges), plan, chunk_size=16, workers=1)
            for plan in plans()
        ]
        fused = executor.run_plans(
            self._scheduler(edges), plans(), chunk_size=16, workers=workers
        )
        assert fused[0].tolist() == per_plan[0].tolist()
        assert fused[1] == per_plan[1]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_early_finisher_does_not_stop_the_sweep(self, workers):
        # The watch plan finishes on the first chunk; the degree plan must
        # still see the entire tape.
        edges = [(0, 1)] + [(10 + i, 11 + i) for i in range(300)]
        ids = np.array([260, 309], dtype=np.int64)
        results = executor.run_plans(
            self._scheduler(edges),
            [WatchKeyPlan([(0, 1)]), DegreeCountPlan(ids)],
            chunk_size=8,
            workers=workers,
        )
        assert results[0] == {(0, 1)}
        # 260 appears in (259, 260) and (260, 261); 309 in (308, 309) and
        # (309, 310) - the last edge of the tape, proving the sweep ran on.
        assert results[1].tolist() == [2, 2]

    def test_all_plans_abandoning_ends_the_sweep(self):
        edges = [(i, i + 1) for i in range(1000)]
        scheduler = self._scheduler(edges, max_passes=2)
        plans = [
            PositionCollectPlan(np.array([0, 3], dtype=np.int64)),
            WatchKeyPlan([(1, 2)]),
        ]
        results = executor.run_plans(scheduler, plans, chunk_size=8, workers=1)
        assert results[0] == [(0, 1), (3, 4)]
        assert results[1] == {(1, 2)}
        assert scheduler.passes_used == 2
        assert scheduler.sweeps_used == 1

    def test_incident_collect_buffers_in_stream_order(self):
        edges = [(5, 10), (1, 2), (3, 5), (2, 7), (5, 6)]
        for workers in (1, 2):
            blocks = executor.run_plan(
                self._scheduler(edges),
                IncidentCollectPlan([5]),
                chunk_size=2,
                workers=workers,
            )
            flat = [tuple(row) for block in blocks for row in block.tolist()]
            assert flat == [(5, 10), (3, 5), (5, 6)]


class TestSharedMemoryTransport:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pickled_fallback_is_bit_identical(self, workers, monkeypatch):
        stream, plan = _stream_and_plan(wheel_graph(110))
        with engine.engine_overrides("chunked", 43, workers, True):
            via_shm = run_single_estimate(stream, plan, random.Random(9))
        monkeypatch.setattr(shm, "_disabled", True)
        fresh = InMemoryEdgeStream(list(stream), validate=False)
        with engine.engine_overrides("chunked", 43, workers, True):
            via_pickle = run_single_estimate(fresh, plan, random.Random(9))
        assert via_pickle == via_shm

    def test_stream_owned_segment_is_reused_and_finalized(self):
        edges = [(i, i + 1) for i in range(500)]
        stream = InMemoryEdgeStream(edges, validate=False)
        if not shm.shm_enabled():  # pragma: no cover - REPRO_SHM=0 run
            pytest.skip("shared memory disabled")
        handles = list(stream.iter_chunk_handles(64))
        names = {h.ref[1] for h in handles if h.ref is not None}
        assert len(names) == 1  # one segment backs every chunk
        assert sum(h.rows for h in handles) == len(edges)
        segment = stream._shared_segment()
        assert list(stream.iter_chunk_handles(64))[0].ref[1] == segment.name
        segment.destroy()  # idempotent owner-side cleanup
        segment.destroy()

    def test_spooled_segments_are_released(self):
        # File-backed chunks are spooled into per-task segments which must
        # all be unlinked once the pass completes.
        before = dict(shm._live_segments)
        edges = [(i, i + 1) for i in range(2000)]
        stream = InMemoryEdgeStream(edges, validate=False)
        monkey_failed = stream._segment_failed
        stream._segment_failed = True  # force the spool path for this stream
        scheduler = PassScheduler(stream)
        ids = np.array([0, 1], dtype=np.int64)
        executor.run_plan(scheduler, DegreeCountPlan(ids), chunk_size=64, workers=2)
        stream._segment_failed = monkey_failed
        if shm.shm_enabled():
            assert dict(shm._live_segments) == before  # nothing leaked
