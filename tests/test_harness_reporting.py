"""Tests for harness reporting internals not covered elsewhere."""

from __future__ import annotations

import pytest

from repro.harness.reporting import _HEADERS, report_rows
from repro.harness.sweep import AggregateReport


def make_aggregate(**overrides):
    defaults = dict(
        algorithm="paper",
        workload="wheel",
        runs=3,
        exact=100,
        median_estimate=98.0,
        median_abs_error=0.02,
        max_abs_error=0.05,
        mean_space_words=1234.0,
        max_space_words=2000,
        mean_passes=6.0,
        mean_wall_seconds=0.1,
    )
    defaults.update(overrides)
    return AggregateReport(**defaults)


class TestReportRows:
    def test_row_width_matches_headers(self):
        rows = report_rows([make_aggregate()])
        assert len(rows) == 1
        assert len(rows[0]) == len(_HEADERS)

    def test_row_values_in_order(self):
        row = report_rows([make_aggregate()])[0]
        assert row[0] == "paper"
        assert row[1] == "wheel"
        assert row[2] == 3
        assert row[3] == 100
        assert row[4] == 98.0

    def test_multiple_rows_preserve_order(self):
        rows = report_rows(
            [make_aggregate(algorithm="a"), make_aggregate(algorithm="b")]
        )
        assert [r[0] for r in rows] == ["a", "b"]

    def test_empty_aggregates(self):
        assert report_rows([]) == []


class TestRunReportProperties:
    def test_infinite_error_when_truth_zero(self):
        from repro.harness.runner import RunReport

        report = RunReport(
            algorithm="x",
            workload="w",
            estimate=5.0,
            exact=0,
            passes_used=1,
            space_words_peak=10,
            wall_seconds=0.0,
            extras={},
        )
        assert report.relative_error == float("inf")
        assert report.abs_relative_error == float("inf")

    def test_signed_error(self):
        from repro.harness.runner import RunReport

        report = RunReport(
            algorithm="x",
            workload="w",
            estimate=80.0,
            exact=100,
            passes_used=1,
            space_words_peak=10,
            wall_seconds=0.0,
            extras={},
        )
        assert report.relative_error == pytest.approx(-0.2)
        assert report.abs_relative_error == pytest.approx(0.2)
