"""Tests for the experiment harness: runner, sweep, reporting."""

from __future__ import annotations

import pytest

from repro import EstimatorConfig
from repro.errors import ParameterError
from repro.generators import cycle_graph, wheel_graph
from repro.harness import (
    aggregate,
    print_report_table,
    run_baseline_on_graph,
    run_paper_estimator_on_graph,
    sweep_seeds,
)


@pytest.fixture(scope="module")
def wheel():
    return wheel_graph(120)


class TestRunner:
    def test_paper_run_report(self, wheel):
        report = run_paper_estimator_on_graph(wheel, kappa=3, seed=1, workload="w")
        assert report.algorithm == "paper"
        assert report.workload == "w"
        assert report.exact == 119
        assert report.passes_used > 0
        assert report.space_words_peak > 0
        assert report.wall_seconds >= 0
        assert abs(report.relative_error) < 1.0

    def test_baseline_run_report(self, wheel):
        report = run_baseline_on_graph("doulion", wheel, seed=1, workload="w")
        assert report.algorithm == "doulion"
        assert report.exact == 119

    def test_exact_override_skips_recount(self, wheel):
        report = run_paper_estimator_on_graph(
            wheel, kappa=3, seed=1, exact=119, config=EstimatorConfig(seed=1, repetitions=1)
        )
        assert report.exact == 119

    def test_relative_error_zero_truth(self):
        graph = cycle_graph(20)
        report = run_baseline_on_graph("doulion", graph, seed=0, t_hint=5.0)
        assert report.exact == 0
        assert report.relative_error == 0.0  # estimate is also 0

    def test_deterministic_given_seed(self, wheel):
        a = run_paper_estimator_on_graph(wheel, kappa=3, seed=9)
        b = run_paper_estimator_on_graph(wheel, kappa=3, seed=9)
        assert a.estimate == b.estimate

    def test_file_entry_accepts_both_formats(self, wheel, tmp_path):
        """The file runner auto-detects text vs ``.etape`` by magic bytes
        and produces bit-identical estimates on both."""
        from repro.harness import run_paper_estimator_on_file
        from repro.io import write_edgelist
        from repro.streams import write_tape

        txt = tmp_path / "wheel.txt"
        write_edgelist(wheel, txt)
        tape = tmp_path / "wheel.etape"
        write_tape(txt, tape)
        text_report = run_paper_estimator_on_file(txt, kappa=3, seed=9)
        tape_report = run_paper_estimator_on_file(tape, kappa=3, seed=9)
        assert text_report.exact == tape_report.exact == 119
        assert text_report.estimate == tape_report.estimate
        assert text_report.passes_used == tape_report.passes_used


class TestSweepAndAggregate:
    def test_sweep_runs_all_seeds(self, wheel):
        reports = sweep_seeds(
            lambda s: run_baseline_on_graph("doulion", wheel, seed=s, workload="w"),
            range(4),
        )
        assert len(reports) == 4

    def test_sweep_empty_rejected(self):
        with pytest.raises(ParameterError):
            sweep_seeds(lambda s: None, [])

    def test_aggregate_statistics(self, wheel):
        reports = sweep_seeds(
            lambda s: run_baseline_on_graph("doulion", wheel, seed=s, workload="w"),
            range(5),
        )
        agg = aggregate(reports)
        assert agg.runs == 5
        assert agg.exact == 119
        assert agg.median_abs_error <= agg.max_abs_error
        assert agg.mean_space_words <= agg.max_space_words

    def test_aggregate_rejects_mixed_algorithms(self, wheel):
        a = run_baseline_on_graph("doulion", wheel, seed=0, workload="w")
        b = run_baseline_on_graph("pavan", wheel, seed=0, workload="w")
        with pytest.raises(ParameterError, match="one algorithm"):
            aggregate([a, b])

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ParameterError):
            aggregate([])


class TestReporting:
    def test_table_contains_rows(self, wheel, capsys):
        reports = sweep_seeds(
            lambda s: run_baseline_on_graph("doulion", wheel, seed=s, workload="w"),
            range(3),
        )
        text = print_report_table([aggregate(reports)], caption="cap")
        captured = capsys.readouterr().out
        assert "doulion" in text
        assert "cap" in captured
