"""Tests for repro.graph.properties, incl. the Lemma 3.1 / Cor 3.2 checks."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.generators import book_graph, complete_graph, wheel_graph
from repro.graph import (
    Graph,
    clustering_coefficients,
    count_triangles,
    degeneracy,
    degree_histogram,
    edge_degree,
    edge_degree_sum,
    global_clustering_coefficient,
    wedge_count,
)
from repro.graph.properties import edge_neighborhood_owner, summary


class TestEdgeDegree:
    def test_min_of_endpoint_degrees(self, wheel10):
        # hub degree 9, rim degree 3 -> spoke edge degree 3
        assert edge_degree(wheel10, (0, 1)) == 3

    def test_symmetric_clique(self, k4):
        for e in k4.edges():
            assert edge_degree(k4, e) == 3

    def test_owner_is_lower_degree_endpoint(self, wheel10):
        assert edge_neighborhood_owner(wheel10, (0, 1)) == 1

    def test_owner_tie_goes_to_second(self, triangle):
        # Equal degrees: N(e) = N(v) per Section 3's "otherwise" branch.
        assert edge_neighborhood_owner(triangle, (0, 1)) == 1

    def test_owner_rejects_non_edge(self, c6):
        with pytest.raises(GraphError):
            edge_neighborhood_owner(c6, (0, 3))


class TestLemma31:
    """d_E <= 2 m kappa (Chiba-Nishizeki) and T <= 2 m kappa (Cor 3.2)."""

    def test_d_e_bound_all_fixtures(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            if g.num_edges == 0:
                continue
            d_e = edge_degree_sum(g)
            assert d_e <= 2 * g.num_edges * degeneracy(g), name

    def test_triangle_bound_all_fixtures(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            assert count_triangles(g) <= 2 * g.num_edges * max(1, degeneracy(g)), name

    def test_clique_near_tightness(self):
        # For K_n the bound is within a factor ~2: d_E = m(n-1), 2m*kappa = 2m(n-1).
        g = complete_graph(12)
        assert edge_degree_sum(g) == g.num_edges * 11
        assert edge_degree_sum(g) <= 2 * g.num_edges * degeneracy(g)


class TestWedges:
    def test_wedge_count_closed_form_star(self):
        from repro.generators import star_graph

        # Star with n-1 leaves: C(n-1, 2) wedges at the center.
        g = star_graph(10)
        assert wedge_count(g) == 9 * 8 // 2

    def test_wedge_count_triangle(self, triangle):
        assert wedge_count(triangle) == 3

    def test_degree_histogram(self, wheel10):
        hist = degree_histogram(wheel10)
        assert hist == {9: 1, 3: 9}


class TestClustering:
    def test_triangle_is_fully_clustered(self, triangle):
        assert global_clustering_coefficient(triangle) == 1.0
        assert clustering_coefficients(triangle) == {0: 1.0, 1: 1.0, 2: 1.0}

    def test_triangle_free_graph(self, c6):
        assert global_clustering_coefficient(c6) == 0.0

    def test_wedge_free_graph(self):
        assert global_clustering_coefficient(Graph(edges=[(0, 1)])) == 0.0

    def test_local_coefficients_in_unit_interval(self, ba_small):
        coeffs = clustering_coefficients(ba_small)
        assert all(0.0 <= c <= 1.0 for c in coeffs.values())

    def test_transitivity_identity(self, grid4):
        # 3T / W computed two ways must agree.
        assert global_clustering_coefficient(grid4) == pytest.approx(
            3 * count_triangles(grid4) / wedge_count(grid4)
        )


class TestSummary:
    def test_summary_keys_and_values(self, book8):
        s = summary(book8)
        assert s["n"] == 10
        assert s["m"] == 17
        assert s["T"] == 8
        assert s["kappa"] == 2
        assert s["max_degree"] == 9
        assert s["d_E"] <= 2 * s["m"] * s["kappa"]
