"""Tests for repro.streams.file.FileEdgeStream and repro.io.edgelist."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.generators import wheel_graph
from repro.io import read_edgelist, write_edgelist
from repro.streams import FileEdgeStream


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("# a comment\n0 1\n\n1 2\n2 0\n")
    return path


class TestFileEdgeStream:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamError, match="not found"):
            FileEdgeStream(tmp_path / "nope.txt")

    def test_parses_and_canonicalizes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("5 2\n")
        assert list(FileEdgeStream(path)) == [(2, 5)]

    def test_skips_comments_and_blanks(self, edge_file):
        assert list(FileEdgeStream(edge_file)) == [(0, 1), (1, 2), (0, 2)]

    def test_len_cached(self, edge_file):
        s = FileEdgeStream(edge_file)
        assert len(s) == 3
        assert len(s) == 3

    def test_replay_consistency(self, edge_file):
        s = FileEdgeStream(edge_file)
        assert list(s) == list(s)

    def test_len_counts_via_chunked_parser(self, tmp_path):
        # Comments and blanks interleaved across chunk boundaries: the
        # batch-parsed count must equal the per-edge iteration count.
        path = tmp_path / "sparse.txt"
        lines = []
        for i in range(257):
            lines.append(f"# filler {i}")
            lines.append(f"{i} {i + 1}")
            if i % 3 == 0:
                lines.append("")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        s = FileEdgeStream(path)
        assert len(s) == 257 == sum(1 for _ in s)

    def test_stats_cached_and_fills_length(self, edge_file):
        s = FileEdgeStream(edge_file)
        stats = s.stats()
        assert stats.num_edges == 3
        assert stats.max_vertex_id == 2
        assert s.stats() is stats  # cached, no second sweep
        # The stats sweep settles the length too: no extra counting pass.
        assert s._length == 3
        assert len(s) == 3

    def test_len_reuses_cached_stats(self, edge_file):
        s = FileEdgeStream(edge_file)
        s.stats()
        s._path = "/nonexistent/after/stats"  # any further sweep would fail
        assert len(s) == 3

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\njust-one-token\n")
        with pytest.raises(StreamError, match="bad.txt:2"):
            list(FileEdgeStream(path))

    def test_non_integer_vertex(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(StreamError, match="non-integer"):
            list(FileEdgeStream(path))

    def test_self_loop_rejected_when_validating(self, tmp_path):
        path = tmp_path / "loop.txt"
        path.write_text("3 3\n")
        with pytest.raises(Exception):
            list(FileEdgeStream(path))

    def test_validate_false_passes_through(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("5 2\n")
        assert list(FileEdgeStream(path, validate=False)) == [(5, 2)]


class TestEdgelistIO:
    def test_roundtrip(self, tmp_path, wheel10):
        path = tmp_path / "wheel.txt"
        write_edgelist(wheel10, path, header=["wheel n=10"])
        loaded = read_edgelist(path)
        assert loaded.edge_list() == wheel10.edge_list()

    def test_header_written_as_comments(self, tmp_path, triangle):
        path = tmp_path / "t.txt"
        write_edgelist(triangle, path, header=["hello", "world"])
        lines = path.read_text().splitlines()
        assert lines[0] == "# hello"
        assert lines[1] == "# world"

    def test_read_drops_duplicates_by_default(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        g = read_edgelist(path)
        assert g.num_edges == 1

    def test_read_drops_self_loops_by_default(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("0 0\n0 1\n")
        g = read_edgelist(path)
        assert g.num_edges == 1

    def test_read_strict_mode(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(Exception):
            read_edgelist(path, on_duplicate="error")

    def test_read_malformed_reports_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nbroken\n")
        with pytest.raises(StreamError, match=":2"):
            read_edgelist(path)

    def test_file_stream_agrees_with_reader(self, tmp_path, grid4):
        path = tmp_path / "grid.txt"
        write_edgelist(grid4, path)
        assert sorted(FileEdgeStream(path)) == grid4.edge_list()


class TestPrefetchShutdown:
    """The double-buffered reader thread must never outlive its pass.

    Closing the chunk iterator joins the thread directly; an iterator
    abandoned *without* close (its consumer frame pinned inside a
    propagating exception's traceback, the common failure shape) parks
    the reader behind the full queue - the next pass over the stream
    proves the old one dead and reaps it.
    """

    def _tape(self, tmp_path, rows=5000):
        import numpy  # noqa: F401 - chunked prefetch needs the kernels

        path = tmp_path / "tape.txt"
        path.write_text("".join(f"{i} {i + 1}\n" for i in range(rows)), encoding="utf-8")
        return path, rows

    @staticmethod
    def _prefetch_threads():
        import threading

        return [t for t in threading.enumerate() if t.name == "repro-file-prefetch"]

    def test_closing_iterator_joins_reader_thread(self, tmp_path, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_FILE_PREFETCH", "1")
        path, _ = self._tape(tmp_path)
        stream = FileEdgeStream(path)
        chunks = stream.iter_chunks(64)
        next(chunks)
        chunks.close()
        assert not self._prefetch_threads()

    def test_abandoned_reader_reaped_by_next_pass(self, tmp_path, monkeypatch):
        pytest.importorskip("numpy")
        import time

        monkeypatch.setenv("REPRO_FILE_PREFETCH", "1")
        path, rows = self._tape(tmp_path)
        stream = FileEdgeStream(path)

        def consumer():
            chunks = stream.iter_chunks(64)  # held by the pinned frame
            for _ in chunks:
                raise RuntimeError("consumer died mid-file")

        # The captured traceback pins the consumer frame - and with it
        # the suspended chunk iterator - exactly as a failure propagating
        # out of a sweep would; the abandoned reader is still parked.
        with pytest.raises(RuntimeError, match="mid-file") as pinned:
            consumer()
        assert self._prefetch_threads()
        # A fresh pass over the same tape retires the orphan and still
        # reads the complete sequence.
        assert sum(len(block) for block in stream.iter_chunks(64)) == rows
        deadline = time.time() + 2.0
        while self._prefetch_threads() and time.time() < deadline:
            time.sleep(0.01)
        assert not self._prefetch_threads(), (
            "abandoned prefetch reader survived a fresh pass"
        )
        del pinned

    def test_abandoned_reader_reaped_by_per_line_pass(self, tmp_path, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_FILE_PREFETCH", "1")
        path, rows = self._tape(tmp_path)
        stream = FileEdgeStream(path)

        def consumer():
            chunks = stream.iter_chunks(64)  # held by the pinned frame
            for _ in chunks:
                raise RuntimeError("consumer died mid-file")

        with pytest.raises(RuntimeError, match="mid-file") as pinned:
            consumer()
        assert self._prefetch_threads()
        # A per-line pass replays the tape too - it must reap the orphan
        # exactly like a chunked pass does.
        assert sum(1 for _ in stream) == rows
        assert not self._prefetch_threads()
        del pinned

    def test_retired_pass_raises_if_resumed(self, tmp_path, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_FILE_PREFETCH", "1")
        path, rows = self._tape(tmp_path)
        stream = FileEdgeStream(path)
        stale = stream.iter_chunks(64)
        next(stale)
        # A newer pass replays the tape underneath the abandoned one.
        assert sum(len(block) for block in stream.iter_chunks(64)) == rows
        # The retired pass fails on its *first* pull - retirement drains
        # the buffered chunks, so no stale data is replayed first.
        with pytest.raises(StreamError, match="retired"):
            next(stale)

    def test_retired_pass_cannot_complete_from_buffered_tail(
        self, tmp_path, monkeypatch
    ):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_FILE_PREFETCH", "1")
        # Chunk size >= the file: the reader buffers the whole tail (and
        # the end sentinel) immediately, so without the retire-time drain
        # a resumed retired pass would *silently complete*.
        path, rows = self._tape(tmp_path, rows=96)
        stream = FileEdgeStream(path)
        stale = stream.iter_chunks(64)
        next(stale)
        assert sum(len(block) for block in stream.iter_chunks(64)) == rows
        with pytest.raises(StreamError, match="retired"):
            next(stale)


class TestBatchParseDiagnostics:
    """Malformed-line errors must carry ``path:lineno`` on every read path,
    including sharded execution with shared-memory chunk spooling live."""

    def _malformed_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        lines = ["# header", "0 1", "1 2", "2 3", "3 oops", "4 5"]
        path.write_text("\n".join(lines) + "\n")
        return path  # malformed token on line 5

    def test_chunked_parser_line_numbered_error(self, tmp_path):
        stream = FileEdgeStream(self._malformed_file(tmp_path))
        with pytest.raises(StreamError, match=r"bad\.txt:5"):
            for _ in stream.iter_chunks(chunk_size=2):
                pass

    def test_prefetch_thread_forwards_line_numbered_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FILE_PREFETCH", "1")
        stream = FileEdgeStream(self._malformed_file(tmp_path))
        with pytest.raises(StreamError, match=r"bad\.txt:5"):
            for _ in stream.iter_chunks(chunk_size=1):
                pass

    def test_sharded_pass_with_shm_spooling_line_numbered_error(
        self, tmp_path, monkeypatch
    ):
        import numpy as np

        from repro.core import executor
        from repro.core.kernels import DegreeCountPlan
        from repro.streams import shm
        from repro.streams.multipass import PassScheduler

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 1)
        monkeypatch.setattr(shm, "_disabled", False)
        assert shm.shm_enabled()
        path = tmp_path / "big_bad.txt"
        good = [f"{i} {i + 1}" for i in range(64)]
        path.write_text("\n".join(good + ["77 oops"] + good) + "\n")
        stream = FileEdgeStream(path)
        plan = DegreeCountPlan(np.arange(10, dtype=np.int64))
        with pytest.raises(StreamError, match=r"big_bad\.txt:65"):
            executor.run_plan(
                PassScheduler(stream), plan, chunk_size=8, workers=2
            )

    def test_shm_off_and_forced_failure_identical_results(
        self, tmp_path, monkeypatch
    ):
        import numpy as np

        from repro.core import executor
        from repro.core.kernels import DegreeCountPlan
        from repro.streams import shm
        from repro.streams.multipass import PassScheduler

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 1)
        path = tmp_path / "good.txt"
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 40, size=(400, 2))
        rows[:, 1] += rows[:, 0] + 1
        path.write_text("\n".join(f"{u} {v}" for u, v in rows.tolist()) + "\n")
        tracked = np.arange(50, dtype=np.int64)

        def run_once():
            stream = FileEdgeStream(path)
            return executor.run_plan(
                PassScheduler(stream),
                DegreeCountPlan(tracked),
                chunk_size=16,
                workers=2,
            ).tolist()

        monkeypatch.setattr(shm, "_disabled", False)
        with_shm = run_once()

        # REPRO_SHM=0: transport disabled up front, blocks are pickled.
        monkeypatch.setattr(shm, "_disabled", True)
        without_shm = run_once()
        assert without_shm == with_shm

        # Forced failure: the first segment allocation raises, the
        # transport disables itself mid-run, and results are unchanged.
        monkeypatch.setattr(shm, "_disabled", False)

        class ExplodingSegment:
            def __init__(self, rows):
                raise OSError("simulated shm exhaustion")

        monkeypatch.setattr(shm, "SharedEdgeSegment", ExplodingSegment)
        after_failure = run_once()
        assert after_failure == with_shm
        assert not shm.shm_enabled()  # the failure disabled the transport
