"""Tests for repro.streams.file.FileEdgeStream and repro.io.edgelist."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.generators import wheel_graph
from repro.io import read_edgelist, write_edgelist
from repro.streams import FileEdgeStream


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("# a comment\n0 1\n\n1 2\n2 0\n")
    return path


class TestFileEdgeStream:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamError, match="not found"):
            FileEdgeStream(tmp_path / "nope.txt")

    def test_parses_and_canonicalizes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("5 2\n")
        assert list(FileEdgeStream(path)) == [(2, 5)]

    def test_skips_comments_and_blanks(self, edge_file):
        assert list(FileEdgeStream(edge_file)) == [(0, 1), (1, 2), (0, 2)]

    def test_len_cached(self, edge_file):
        s = FileEdgeStream(edge_file)
        assert len(s) == 3
        assert len(s) == 3

    def test_replay_consistency(self, edge_file):
        s = FileEdgeStream(edge_file)
        assert list(s) == list(s)

    def test_len_counts_via_chunked_parser(self, tmp_path):
        # Comments and blanks interleaved across chunk boundaries: the
        # batch-parsed count must equal the per-edge iteration count.
        path = tmp_path / "sparse.txt"
        lines = []
        for i in range(257):
            lines.append(f"# filler {i}")
            lines.append(f"{i} {i + 1}")
            if i % 3 == 0:
                lines.append("")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        s = FileEdgeStream(path)
        assert len(s) == 257 == sum(1 for _ in s)

    def test_stats_cached_and_fills_length(self, edge_file):
        s = FileEdgeStream(edge_file)
        stats = s.stats()
        assert stats.num_edges == 3
        assert stats.max_vertex_id == 2
        assert s.stats() is stats  # cached, no second sweep
        # The stats sweep settles the length too: no extra counting pass.
        assert s._length == 3
        assert len(s) == 3

    def test_len_reuses_cached_stats(self, edge_file):
        s = FileEdgeStream(edge_file)
        s.stats()
        s._path = "/nonexistent/after/stats"  # any further sweep would fail
        assert len(s) == 3

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\njust-one-token\n")
        with pytest.raises(StreamError, match="bad.txt:2"):
            list(FileEdgeStream(path))

    def test_non_integer_vertex(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(StreamError, match="non-integer"):
            list(FileEdgeStream(path))

    def test_self_loop_rejected_when_validating(self, tmp_path):
        path = tmp_path / "loop.txt"
        path.write_text("3 3\n")
        with pytest.raises(Exception):
            list(FileEdgeStream(path))

    def test_validate_false_passes_through(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("5 2\n")
        assert list(FileEdgeStream(path, validate=False)) == [(5, 2)]


class TestEdgelistIO:
    def test_roundtrip(self, tmp_path, wheel10):
        path = tmp_path / "wheel.txt"
        write_edgelist(wheel10, path, header=["wheel n=10"])
        loaded = read_edgelist(path)
        assert loaded.edge_list() == wheel10.edge_list()

    def test_header_written_as_comments(self, tmp_path, triangle):
        path = tmp_path / "t.txt"
        write_edgelist(triangle, path, header=["hello", "world"])
        lines = path.read_text().splitlines()
        assert lines[0] == "# hello"
        assert lines[1] == "# world"

    def test_read_drops_duplicates_by_default(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        g = read_edgelist(path)
        assert g.num_edges == 1

    def test_read_drops_self_loops_by_default(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("0 0\n0 1\n")
        g = read_edgelist(path)
        assert g.num_edges == 1

    def test_read_strict_mode(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(Exception):
            read_edgelist(path, on_duplicate="error")

    def test_read_malformed_reports_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nbroken\n")
        with pytest.raises(StreamError, match=":2"):
            read_edgelist(path)

    def test_file_stream_agrees_with_reader(self, tmp_path, grid4):
        path = tmp_path / "grid.txt"
        write_edgelist(grid4, path)
        assert sorted(FileEdgeStream(path)) == grid4.edge_list()


class TestBatchParseDiagnostics:
    """Malformed-line errors must carry ``path:lineno`` on every read path,
    including sharded execution with shared-memory chunk spooling live."""

    def _malformed_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        lines = ["# header", "0 1", "1 2", "2 3", "3 oops", "4 5"]
        path.write_text("\n".join(lines) + "\n")
        return path  # malformed token on line 5

    def test_chunked_parser_line_numbered_error(self, tmp_path):
        stream = FileEdgeStream(self._malformed_file(tmp_path))
        with pytest.raises(StreamError, match=r"bad\.txt:5"):
            for _ in stream.iter_chunks(chunk_size=2):
                pass

    def test_prefetch_thread_forwards_line_numbered_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FILE_PREFETCH", "1")
        stream = FileEdgeStream(self._malformed_file(tmp_path))
        with pytest.raises(StreamError, match=r"bad\.txt:5"):
            for _ in stream.iter_chunks(chunk_size=1):
                pass

    def test_sharded_pass_with_shm_spooling_line_numbered_error(
        self, tmp_path, monkeypatch
    ):
        import numpy as np

        from repro.core import executor
        from repro.core.kernels import DegreeCountPlan
        from repro.streams import shm
        from repro.streams.multipass import PassScheduler

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 1)
        monkeypatch.setattr(shm, "_disabled", False)
        assert shm.shm_enabled()
        path = tmp_path / "big_bad.txt"
        good = [f"{i} {i + 1}" for i in range(64)]
        path.write_text("\n".join(good + ["77 oops"] + good) + "\n")
        stream = FileEdgeStream(path)
        plan = DegreeCountPlan(np.arange(10, dtype=np.int64))
        with pytest.raises(StreamError, match=r"big_bad\.txt:65"):
            executor.run_plan(
                PassScheduler(stream), plan, chunk_size=8, workers=2
            )

    def test_shm_off_and_forced_failure_identical_results(
        self, tmp_path, monkeypatch
    ):
        import numpy as np

        from repro.core import executor
        from repro.core.kernels import DegreeCountPlan
        from repro.streams import shm
        from repro.streams.multipass import PassScheduler

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 1)
        path = tmp_path / "good.txt"
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 40, size=(400, 2))
        rows[:, 1] += rows[:, 0] + 1
        path.write_text("\n".join(f"{u} {v}" for u, v in rows.tolist()) + "\n")
        tracked = np.arange(50, dtype=np.int64)

        def run_once():
            stream = FileEdgeStream(path)
            return executor.run_plan(
                PassScheduler(stream),
                DegreeCountPlan(tracked),
                chunk_size=16,
                workers=2,
            ).tolist()

        monkeypatch.setattr(shm, "_disabled", False)
        with_shm = run_once()

        # REPRO_SHM=0: transport disabled up front, blocks are pickled.
        monkeypatch.setattr(shm, "_disabled", True)
        without_shm = run_once()
        assert without_shm == with_shm

        # Forced failure: the first segment allocation raises, the
        # transport disables itself mid-run, and results are unchanged.
        monkeypatch.setattr(shm, "_disabled", False)

        class ExplodingSegment:
            def __init__(self, rows):
                raise OSError("simulated shm exhaustion")

        monkeypatch.setattr(shm, "SharedEdgeSegment", ExplodingSegment)
        after_failure = run_once()
        assert after_failure == with_shm
        assert not shm.shm_enabled()  # the failure disabled the transport
