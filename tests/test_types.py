"""Tests for repro.types: canonical forms and triangle/edge helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.types import (
    canonical_edge,
    canonical_triangle,
    closes_triangle,
    normalize_edges,
    third_vertex,
    triangle_edges,
)


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)

    def test_preserves_ordered_pair(self):
        assert canonical_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            canonical_edge(3, 3)

    def test_rejects_negative_first(self):
        with pytest.raises(GraphError, match="negative"):
            canonical_edge(-1, 3)

    def test_rejects_negative_second(self):
        with pytest.raises(GraphError, match="negative"):
            canonical_edge(3, -1)

    def test_zero_is_valid_vertex(self):
        assert canonical_edge(0, 1) == (0, 1)

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    def test_symmetric_and_sorted(self, u, v):
        if u == v:
            with pytest.raises(GraphError):
                canonical_edge(u, v)
        else:
            e1 = canonical_edge(u, v)
            e2 = canonical_edge(v, u)
            assert e1 == e2
            assert e1[0] < e1[1]


class TestCanonicalTriangle:
    def test_sorts_vertices(self):
        assert canonical_triangle(7, 1, 4) == (1, 4, 7)

    @pytest.mark.parametrize("a,b,c", [(1, 1, 2), (1, 2, 2), (3, 2, 3)])
    def test_rejects_repeated_vertices(self, a, b, c):
        with pytest.raises(GraphError, match="distinct"):
            canonical_triangle(a, b, c)

    @given(st.sets(st.integers(0, 1000), min_size=3, max_size=3))
    def test_permutation_invariant(self, vertices):
        a, b, c = sorted(vertices)
        import itertools

        results = {canonical_triangle(*p) for p in itertools.permutations((a, b, c))}
        assert results == {(a, b, c)}


class TestTriangleEdges:
    def test_three_canonical_edges(self):
        assert triangle_edges((1, 4, 7)) == ((1, 4), (1, 7), (4, 7))

    def test_edges_cover_all_pairs(self):
        edges = triangle_edges((0, 2, 5))
        assert len(set(edges)) == 3
        for u, v in edges:
            assert u < v


class TestThirdVertex:
    def test_finds_apex(self):
        assert third_vertex((1, 4), (1, 4, 7)) == 7

    def test_each_edge_yields_other_vertex(self):
        t = (2, 5, 9)
        apexes = {third_vertex(e, t) for e in triangle_edges(t)}
        assert apexes == {2, 5, 9}

    def test_rejects_foreign_edge(self):
        with pytest.raises(GraphError, match="not part of"):
            third_vertex((1, 2), (3, 4, 5))


class TestClosesTriangle:
    def test_builds_canonical_triangle(self):
        assert closes_triangle((4, 7), 1) == (1, 4, 7)

    def test_apex_equal_to_endpoint_rejected(self):
        with pytest.raises(GraphError):
            closes_triangle((4, 7), 4)


class TestNormalizeEdges:
    def test_canonicalizes_and_keeps_order(self):
        assert normalize_edges([(3, 1), (0, 2)]) == [(1, 3), (0, 2)]

    def test_rejects_duplicates_across_orientations(self):
        with pytest.raises(GraphError, match="duplicate"):
            normalize_edges([(1, 2), (2, 1)])

    def test_empty_input(self):
        assert normalize_edges([]) == []

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50))))
    def test_output_edges_are_canonical_or_raises(self, edges):
        try:
            out = normalize_edges(edges)
        except GraphError:
            return
        assert all(u < v for u, v in out)
        assert len(set(out)) == len(out)
