"""Deep statistical validation: the (eps, delta)-style guarantees, measured.

These tests repeat entire estimator runs across many independent seeds and
check the *distributional* claims of the paper - empirical failure rates
against the configured confidence, unbiasedness of each baseline's basic
estimator, and the variance ordering the assignment rule is supposed to
enforce.  They are slower than unit tests (seconds each) but still fit in
the default suite.
"""

from __future__ import annotations

import random

import pytest

from repro import EstimatorConfig, TriangleCountEstimator
from repro.analysis.variance import empirical_moments
from repro.baselines.registry import InstanceParameters, make_baseline
from repro.core.params import PlanConstants
from repro.generators import book_graph, triangulated_grid_graph, wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream
from repro.streams.transforms import shuffled


class TestDriverFailureRate:
    def test_wheel_failure_rate_within_budget(self):
        # 20 independent full runs at eps=0.3; count how many land outside
        # a 1.5*eps band (practical constants trade the formal union bound
        # for repetition, so the generous band is the honest check).
        graph = wheel_graph(250)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(0)))
        epsilon = 0.3
        failures = 0
        runs = 20
        for seed in range(runs):
            cfg = EstimatorConfig(epsilon=epsilon, repetitions=5, seed=seed)
            estimate = TriangleCountEstimator(cfg).estimate(stream, kappa=3).estimate
            if abs(estimate - t) > 1.5 * epsilon * t:
                failures += 1
        assert failures <= 3, f"{failures}/{runs} runs outside the 1.5*eps band"

    def test_grid_failure_rate_within_budget(self):
        graph = triangulated_grid_graph(12, 12)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(1)))
        failures = 0
        runs = 15
        for seed in range(runs):
            cfg = EstimatorConfig(epsilon=0.3, repetitions=5, seed=seed)
            estimate = TriangleCountEstimator(cfg).estimate(stream, kappa=3).estimate
            if abs(estimate - t) > 0.45 * t:
                failures += 1
        assert failures <= 3

    def test_larger_constants_tighten_estimates(self):
        # Doubling every plan constant must not worsen the median error
        # by more than noise - and typically improves it.
        graph = wheel_graph(250)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(0)))
        errors = {}
        for label, constants in (
            ("base", PlanConstants.PRACTICAL),
            ("double", PlanConstants(c_r=6.0, c_ell=6.0, c_s=6.0)),
        ):
            per_seed = []
            for seed in range(8):
                cfg = EstimatorConfig(
                    epsilon=0.3, repetitions=3, seed=seed, constants=constants,
                    t_hint=float(t),
                )
                estimate = TriangleCountEstimator(cfg).estimate(stream, kappa=3).estimate
                per_seed.append(abs(estimate - t) / t)
            per_seed.sort()
            errors[label] = per_seed[len(per_seed) // 2]
        assert errors["double"] <= errors["base"] + 0.1


class TestBaselineUnbiasedness:
    """Each baseline's mean over many runs approaches T (its estimator is
    unbiased by construction; this is the empirical counterpart)."""

    @pytest.fixture(scope="class")
    def instance(self):
        graph = triangulated_grid_graph(10, 10)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        return graph, stream, count_triangles(graph)

    @pytest.mark.parametrize(
        "name,runs", [("buriol", 25), ("doulion", 25), ("pavan", 25), ("mvv-neighbor", 25)]
    )
    def test_mean_tracks_truth(self, instance, name, runs):
        graph, stream, t = instance
        params = InstanceParameters(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            t_hint=float(t),
            epsilon=0.3,
        )
        estimates = [
            make_baseline(name, params, random.Random(seed)).estimate(stream).estimate
            for seed in range(runs)
        ]
        moments = empirical_moments(estimates)
        se = moments.std / (runs ** 0.5)
        assert abs(moments.mean - t) <= 4 * se + 0.1 * t, name


class TestVarianceOrdering:
    def test_book_graph_rule_beats_no_rule(self):
        # The distributional form of E11: over 20 runs, the assigned
        # variant's spread is materially below the 1/3-split's.
        from repro.core.ablation import (
            run_single_estimate_exact_assigner,
            run_single_estimate_third_split,
        )
        from repro.core.params import ParameterPlan

        graph = book_graph(300)
        t = count_triangles(graph)
        plan = ParameterPlan.build(
            graph.num_vertices, graph.num_edges, 2, float(t), 0.25
        )
        stream = InMemoryEdgeStream.from_graph(graph)
        split = empirical_moments(
            [
                run_single_estimate_third_split(stream, plan, random.Random(s)).estimate
                for s in range(20)
            ]
        )
        ruled = empirical_moments(
            [
                run_single_estimate_exact_assigner(
                    stream, plan, random.Random(s), graph
                ).estimate
                for s in range(20)
            ]
        )
        assert ruled.relative_std < split.relative_std

    def test_theory_mode_runs_and_concentrates(self):
        # The theory regime's constants are huge; on a tiny instance the
        # caps keep it tractable and the estimate should be excellent.
        graph = wheel_graph(60)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph)
        cfg = EstimatorConfig(
            epsilon=0.3, repetitions=3, seed=2, mode="theory", t_hint=float(t)
        )
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert abs(result.estimate - t) / t < 0.2
