"""Tests for repro.core.params: plan formulas, regimes, and clamps."""

from __future__ import annotations

import math

import pytest

from repro.core import ParameterPlan, PlanConstants
from repro.errors import ParameterError


def make_plan(**overrides):
    defaults = dict(
        num_vertices=1000, num_edges=5000, kappa=5, t_guess=2000.0, epsilon=0.25
    )
    defaults.update(overrides)
    return ParameterPlan.build(**defaults)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_vertices", 0),
            ("num_edges", 0),
            ("kappa", 0),
            ("t_guess", 0.0),
            ("t_guess", -5.0),
            ("epsilon", 0.0),
            ("epsilon", 1.0),
        ],
    )
    def test_rejects_bad_inputs(self, field, value):
        with pytest.raises(ParameterError):
            make_plan(**{field: value})

    def test_rejects_unknown_mode(self):
        with pytest.raises(ParameterError, match="mode"):
            make_plan(mode="magic")

    def test_constants_must_be_positive(self):
        with pytest.raises(ParameterError):
            PlanConstants(c_r=0.0, c_ell=1.0, c_s=1.0)


class TestPracticalFormulas:
    def test_r_tracks_m_kappa_over_t(self):
        p1 = make_plan(t_guess=1000.0)
        p2 = make_plan(t_guess=2000.0)
        # Halving the guess doubles r (before clamps).
        assert p1.r == pytest.approx(2 * p2.r, rel=0.02)

    def test_r_scales_with_kappa(self):
        assert make_plan(kappa=10).r == pytest.approx(2 * make_plan(kappa=5).r, rel=0.02)

    def test_r_scales_inverse_epsilon_squared(self):
        fine = make_plan(epsilon=0.1)
        coarse = make_plan(epsilon=0.2)
        assert fine.r == pytest.approx(4 * coarse.r, rel=0.02)

    def test_s_positive_and_tracks_plan(self):
        p = make_plan()
        expected = 3.0 * 5000 * 5 / (2000.0 * 0.0625)
        assert p.s == math.ceil(expected)

    def test_floor_values(self):
        # Gigantic guess -> formulas shrink below the floors.
        p = make_plan(t_guess=1e12)
        assert p.r == 8
        assert p.s == 4
        assert p.ell(1.0) == 8

    def test_cap_values(self):
        # Tiny guess -> formulas explode; clamped to 4m.
        p = make_plan(t_guess=1e-6)
        assert p.r == 4 * 5000
        assert p.s == 4 * 5000
        assert p.ell(1e12) == 4 * 5000

    def test_degree_cutoff_formula(self):
        p = make_plan()
        assert p.degree_cutoff == pytest.approx(5000 * 25 / (0.0625 * 2000.0))

    def test_assignment_cutoff_formula(self):
        p = make_plan()
        assert p.assignment_cutoff == pytest.approx(5 / 0.5)

    def test_ell_monotone_in_d_r(self):
        p = make_plan()
        assert p.ell(100.0) <= p.ell(1000.0)

    def test_ell_rejects_negative_d_r(self):
        with pytest.raises(ParameterError):
            make_plan().ell(-1.0)

    def test_predicted_space(self):
        p = make_plan()
        assert p.predicted_space_words == pytest.approx(5000 * 5 / 2000.0)


class TestTheoryRegime:
    def test_theory_includes_log_factor(self):
        practical = make_plan(mode="practical")
        theory = make_plan(mode="theory")
        assert theory.log_factor == pytest.approx(math.log(1000))
        assert practical.log_factor == 1.0
        assert theory.r > practical.r

    def test_theory_constants_respect_lemmas(self):
        c = PlanConstants.THEORY
        assert c.c_r > 6      # Lemma 5.5
        assert c.c_ell > 20   # Lemma 5.7
        assert c.c_s > 60     # Theorem 5.13

    def test_theory_uses_tau_max_kappa_over_eps(self):
        # In the theory regime, r carries an extra 1/eps from tau_max <= kappa/eps.
        theory = make_plan(mode="theory", t_guess=1e5)  # clear of floor and cap
        practical = make_plan(mode="practical", t_guess=1e5)
        ratio = (theory.r / practical.r)
        expected = (
            PlanConstants.THEORY.c_r
            / PlanConstants.PRACTICAL.c_r
            * math.log(1000)
            / 0.25
        )
        # Ceil-induced wiggle at small values; just check the scale.
        assert ratio == pytest.approx(expected, rel=0.6)

    def test_custom_constants(self):
        custom = PlanConstants(c_r=1.0, c_ell=1.0, c_s=1.0)
        p = make_plan(constants=custom)
        assert p.r == math.ceil(1.0 * 5000 * 5 / (2000.0 * 0.0625))
