"""Tests for the Conjecture 7.1 clique extension."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.variance import empirical_moments
from repro.cliques import (
    CliqueOracleEstimator,
    count_cliques,
    enumerate_cliques,
    per_edge_clique_counts,
)
from repro.cliques.exact import min_count_edge_assignment
from repro.errors import ParameterError
from repro.generators import (
    barabasi_albert_graph,
    book_graph,
    complete_graph,
    cycle_graph,
    wheel_graph,
)
from repro.graph import Graph, count_triangles
from repro.streams import InMemoryEdgeStream


def _comb(n: int, k: int) -> int:
    return math.comb(n, k)


class TestExactCounting:
    def test_k1_is_vertices(self, wheel10):
        assert count_cliques(wheel10, 1) == wheel10.num_vertices

    def test_k2_is_edges(self, wheel10):
        assert count_cliques(wheel10, 2) == wheel10.num_edges

    def test_k3_matches_triangle_counter(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            assert count_cliques(g, 3) == count_triangles(g), name

    @pytest.mark.parametrize("n,k", [(6, 3), (6, 4), (6, 5), (6, 6), (8, 4)])
    def test_clique_graph_closed_form(self, n, k):
        assert count_cliques(complete_graph(n), k) == _comb(n, k)

    def test_k_larger_than_clique_number(self, c6):
        assert count_cliques(c6, 3) == 0

    def test_wheel_has_no_4_cliques(self):
        assert count_cliques(wheel_graph(12), 4) == 0

    def test_wheel4_is_k4(self):
        assert count_cliques(wheel_graph(4), 4) == 1

    def test_invalid_k(self, triangle):
        with pytest.raises(ParameterError):
            count_cliques(triangle, 0)

    def test_against_networkx(self):
        import networkx as nx

        from repro.graph.validation import to_networkx

        g = barabasi_albert_graph(60, 5, random.Random(4))
        nx_graph = to_networkx(g)
        for k in (3, 4, 5):
            theirs = sum(1 for c in nx.enumerate_all_cliques(nx_graph) if len(c) == k)
            assert count_cliques(g, k) == theirs, k


class TestEnumeration:
    def test_yields_sorted_distinct(self):
        g = complete_graph(7)
        cliques = list(enumerate_cliques(g, 4))
        assert len(cliques) == len(set(cliques)) == _comb(7, 4)
        for c in cliques:
            assert list(c) == sorted(c)

    def test_every_pair_adjacent(self):
        g = barabasi_albert_graph(40, 4, random.Random(1))
        for clique in enumerate_cliques(g, 4):
            for i, u in enumerate(clique):
                for v in clique[i + 1 :]:
                    assert g.has_edge(u, v)


class TestPerEdgeCounts:
    def test_sum_identity(self):
        # Each k-clique contains C(k, 2) edges.
        g = complete_graph(8)
        for k in (3, 4):
            counts = per_edge_clique_counts(g, k)
            assert sum(counts.values()) == _comb(k, 2) * count_cliques(g, k)

    def test_matches_triangle_te(self, book8):
        from repro.graph import per_edge_triangle_counts

        assert per_edge_clique_counts(book8, 3) == per_edge_triangle_counts(book8)

    def test_invalid_k(self, triangle):
        with pytest.raises(ParameterError):
            per_edge_clique_counts(triangle, 1)


class TestAssignmentRule:
    def test_assigns_to_contained_edge(self):
        g = complete_graph(7)
        assignment = min_count_edge_assignment(g, 4)
        assert len(assignment) == _comb(7, 4)
        for clique, edge in assignment.items():
            assert edge[0] in clique and edge[1] in clique

    def test_deterministic(self):
        g = barabasi_albert_graph(30, 4, random.Random(2))
        assert min_count_edge_assignment(g, 3) == min_count_edge_assignment(g, 3)


class TestCliqueOracleEstimator:
    def test_validation(self, triangle):
        with pytest.raises(ParameterError):
            CliqueOracleEstimator(triangle, k=2, copies=10, rng=random.Random(0))
        with pytest.raises(ParameterError):
            CliqueOracleEstimator(triangle, k=3, copies=0, rng=random.Random(0))
        with pytest.raises(ParameterError):
            CliqueOracleEstimator(triangle, k=3, copies=10, rng=random.Random(0), median_groups=4)

    def test_three_passes(self):
        g = complete_graph(8)
        stream = InMemoryEdgeStream.from_graph(g)
        est = CliqueOracleEstimator(g, k=4, copies=20, rng=random.Random(1))
        assert est.estimate(stream).passes_used == 3

    def test_clique_free_estimates_zero(self):
        g = cycle_graph(20)
        stream = InMemoryEdgeStream.from_graph(g)
        est = CliqueOracleEstimator(g, k=3, copies=50, rng=random.Random(1))
        assert est.estimate(stream).estimate == 0.0

    def test_k3_matches_triangle_semantics(self):
        # For k=3 the estimator is Algorithm 1 with the min-count rule;
        # unbiasedness check within standard error.
        g = wheel_graph(40)
        t = count_triangles(g)
        stream = InMemoryEdgeStream.from_graph(g)
        est = CliqueOracleEstimator(g, k=3, copies=2000, rng=random.Random(5))
        result = est.estimate(stream)
        moments = empirical_moments(result.raw_estimates)
        se = moments.std / math.sqrt(len(result.raw_estimates))
        assert abs(moments.mean - t) <= 4 * se + 1e-9

    @pytest.mark.parametrize("k", [4, 5])
    def test_unbiased_on_clique_graph(self, k):
        g = complete_graph(10)
        truth = _comb(10, k)
        stream = InMemoryEdgeStream.from_graph(g)
        est = CliqueOracleEstimator(g, k=k, copies=4000, rng=random.Random(7))
        result = est.estimate(stream)
        moments = empirical_moments(result.raw_estimates)
        se = moments.std / math.sqrt(len(result.raw_estimates))
        assert abs(moments.mean - truth) <= 4 * se + 0.05 * truth

    def test_unbiased_on_ba_4cliques(self):
        g = barabasi_albert_graph(50, 6, random.Random(9))
        truth = count_cliques(g, 4)
        assert truth > 0
        stream = InMemoryEdgeStream.from_graph(g)
        est = CliqueOracleEstimator(g, k=4, copies=6000, rng=random.Random(11))
        result = est.estimate(stream)
        moments = empirical_moments(result.raw_estimates)
        se = moments.std / math.sqrt(len(result.raw_estimates))
        assert abs(moments.mean - truth) <= 4 * se + 0.1 * truth

    def test_deterministic(self):
        g = complete_graph(8)
        stream = InMemoryEdgeStream.from_graph(g)
        a = CliqueOracleEstimator(g, k=4, copies=50, rng=random.Random(3)).estimate(stream)
        b = CliqueOracleEstimator(g, k=4, copies=50, rng=random.Random(3)).estimate(stream)
        assert a.estimate == b.estimate
