"""The executable examples embedded in docstrings must actually run.

README-level docstrings rot silently; running them as doctests keeps the
public-facing snippets honest.
"""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.core.driver


@pytest.mark.parametrize("module", [repro, repro.core.driver])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
