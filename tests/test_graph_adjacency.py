"""Tests for repro.graph.adjacency.Graph."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import Graph


def small_edge_lists():
    """Hypothesis strategy: duplicate-free canonical edge lists."""
    pairs = st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda p: p[0] != p[1])
    return st.lists(pairs, max_size=40).map(
        lambda edges: list({(min(u, v), max(u, v)) for u, v in edges})
    )


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_isolated_vertices(self):
        g = Graph(vertices=[3, 5])
        assert g.num_vertices == 2
        assert g.num_edges == 0
        assert g.degree(3) == 0

    def test_rejects_negative_vertex(self):
        with pytest.raises(GraphError, match="negative"):
            Graph(vertices=[-1])

    def test_edges_canonicalized(self):
        g = Graph(edges=[(5, 2)])
        assert g.has_edge(2, 5)
        assert list(g.edges()) == [(2, 5)]

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph(edges=[(1, 2), (2, 1)])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph(edges=[(4, 4)])


class TestQueries:
    def test_degree(self, wheel10):
        assert wheel10.degree(0) == 9  # hub
        assert wheel10.degree(1) == 3  # rim

    def test_degree_unknown_vertex_raises(self, triangle):
        with pytest.raises(GraphError, match="not in graph"):
            triangle.degree(99)

    def test_neighbors(self, triangle):
        assert triangle.neighbors(0) == {1, 2}

    def test_neighbors_unknown_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(42)

    def test_has_edge_both_orientations(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)

    def test_has_edge_absent(self, c6):
        assert not c6.has_edge(0, 3)

    def test_has_edge_self_loop_is_false(self, triangle):
        assert not triangle.has_edge(1, 1)

    def test_has_edge_unknown_vertices(self, triangle):
        assert not triangle.has_edge(50, 60)

    def test_edge_list_sorted_unique(self, wheel10):
        edges = wheel10.edge_list()
        assert edges == sorted(edges)
        assert len(edges) == wheel10.num_edges == 18

    def test_degrees_mapping(self, k4):
        assert k4.degrees() == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_max_degree(self, wheel10):
        assert wheel10.max_degree() == 9

    def test_max_degree_empty(self):
        assert Graph().max_degree() == 0

    def test_contains_and_len(self, triangle):
        assert 0 in triangle
        assert 9 not in triangle
        assert len(triangle) == 3

    def test_handshake_lemma(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            assert sum(g.degrees().values()) == 2 * g.num_edges, name


class TestDerivedGraphs:
    def test_induced_subgraph(self, k4):
        sub = k4.induced_subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_induced_subgraph_ignores_foreign_vertices(self, triangle):
        sub = triangle.induced_subgraph([0, 1, 99])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_subgraph_of_edges(self, k4):
        sub = k4.subgraph_of_edges([(0, 1), (2, 3)])
        assert sub.num_edges == 2

    def test_subgraph_of_edges_rejects_missing(self, c6):
        with pytest.raises(GraphError, match="not in graph"):
            c6.subgraph_of_edges([(0, 3)])

    def test_relabeled(self, triangle):
        g = triangle.relabeled({0: 10, 1: 11, 2: 12})
        assert g.has_edge(10, 11) and g.has_edge(11, 12) and g.has_edge(10, 12)

    def test_relabeled_rejects_non_injective(self, triangle):
        with pytest.raises(GraphError, match="injective"):
            triangle.relabeled({0: 5, 1: 5, 2: 6})

    def test_copy_is_equal_but_independent(self, triangle):
        clone = triangle.copy()
        assert clone == triangle
        clone.add_edge_unchecked(0, 7)
        assert clone != triangle

    def test_equality(self):
        assert Graph(edges=[(0, 1)]) == Graph(edges=[(1, 0)])
        assert Graph(edges=[(0, 1)]) != Graph(edges=[(0, 2)])

    def test_unhashable(self, triangle):
        with pytest.raises(TypeError):
            hash(triangle)


class TestProperties:
    @given(small_edge_lists())
    def test_edges_roundtrip(self, edges):
        g = Graph(edges=edges)
        assert sorted(g.edges()) == sorted(edges)
        assert g.num_edges == len(edges)

    @given(small_edge_lists())
    def test_neighbor_symmetry(self, edges):
        g = Graph(edges=edges)
        for v in g.vertices():
            for w in g.neighbors(v):
                assert v in g.neighbors(w)
