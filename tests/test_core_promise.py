"""Tests for the one-pass degeneracy bracket."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.promise import DegeneracyBracket, degeneracy_bracket
from repro.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    standard_suite,
    star_graph,
    wheel_graph,
)
from repro.graph import Graph, degeneracy
from repro.streams import InMemoryEdgeStream


def bracket_of(graph):
    return degeneracy_bracket(InMemoryEdgeStream.from_graph(graph))


class TestBracketContainsTruth:
    def test_all_fixtures(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            b = bracket_of(g)
            kappa = degeneracy(g)
            assert b.lower <= kappa <= b.upper, (name, b, kappa)

    def test_workload_suite(self):
        for w in standard_suite("tiny"):
            g = w.instantiate(0)
            b = bracket_of(g)
            kappa = degeneracy(g)
            assert b.lower <= kappa <= b.upper, w.name

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = erdos_renyi_gnm(80, 240, random.Random(seed))
        b = bracket_of(g)
        assert b.lower <= degeneracy(g) <= b.upper

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=40,
        )
    )
    def test_hypothesis_bracket(self, raw_edges):
        edges = list({(min(u, v), max(u, v)) for u, v in raw_edges})
        g = Graph(edges=edges)
        b = bracket_of(g)
        assert b.lower <= degeneracy(g) <= b.upper


class TestTightness:
    def test_clique_exact(self):
        # K_n: h-index = n-1 = kappa; lower = ceil(m/n) = (n-1)/2 rounded.
        b = bracket_of(complete_graph(9))
        assert b.upper == 8
        assert b.lower == 4

    def test_cycle_tight_at_two(self):
        b = bracket_of(cycle_graph(20))
        assert b.lower == 1
        assert b.upper == 2

    def test_star_upper_is_one(self):
        # Star: one vertex of degree n-1, the rest degree 1; h-index is 1
        # ... for n >= 3 at least: histogram has n-1 vertices of degree 1.
        b = bracket_of(star_graph(10))
        assert b.upper >= 1
        assert degeneracy(star_graph(10)) <= b.upper

    def test_wheel_bracket(self):
        b = bracket_of(wheel_graph(100))
        assert b.lower == 2
        assert 3 <= b.upper <= 4  # h-index of (99, 3, 3, ..., 3) is 3

    def test_ba_width_moderate(self):
        # Power-law tails inflate the h-index; the bracket stays within a
        # small constant factor of the truth (here lower = kappa = 5,
        # upper = h-index = 21 -> ratio 4.2).
        g = barabasi_albert_graph(300, 5, random.Random(2))
        b = bracket_of(g)
        assert b.lower == degeneracy(g) == 5
        assert b.width_ratio <= 6.0


class TestMechanics:
    def test_empty_stream(self):
        b = degeneracy_bracket(InMemoryEdgeStream([]))
        assert b.lower == b.upper == 0
        assert b.num_edges == 0

    def test_one_pass_only(self, wheel10):
        stream = InMemoryEdgeStream.from_graph(wheel10)
        # degeneracy_bracket builds its own scheduler with max_passes=1;
        # reaching here without PassBudgetExceeded is the assertion.
        b = degeneracy_bracket(stream)
        assert b.num_edges == wheel10.num_edges

    def test_space_charged(self, wheel10):
        from repro.streams import SpaceMeter

        meter = SpaceMeter()
        degeneracy_bracket(InMemoryEdgeStream.from_graph(wheel10), meter=meter)
        assert meter.peak_breakdown()["degree-index"] == wheel10.num_vertices

    def test_invalid_bracket_rejected(self):
        with pytest.raises(ValueError):
            DegeneracyBracket(lower=5, upper=3, num_edges=1, num_vertices_seen=2, space_words_peak=0)

    def test_upper_is_safe_promise(self):
        # End-to-end: feed the bracket's upper end to the estimator.
        from repro import EstimatorConfig, TriangleCountEstimator
        from repro.graph import count_triangles

        g = wheel_graph(200)
        stream = InMemoryEdgeStream.from_graph(g)
        b = degeneracy_bracket(stream)
        t = count_triangles(g)
        result = TriangleCountEstimator(EstimatorConfig(seed=3, repetitions=3)).estimate(
            stream, kappa=b.upper
        )
        assert abs(result.estimate - t) / t < 0.35
