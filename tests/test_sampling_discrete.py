"""Tests for repro.sampling.discrete.CumulativeSampler."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import CumulativeSampler


class TestValidation:
    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            CumulativeSampler([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            CumulativeSampler([1.0, -0.5])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            CumulativeSampler([0.0, 0.0])

    def test_total_weight(self):
        assert CumulativeSampler([1.0, 2.0, 3.0]).total_weight == 6.0

    def test_draw_many_negative_count(self):
        with pytest.raises(ValueError):
            CumulativeSampler([1.0]).draw_many(random.Random(0), -1)


class TestDraws:
    def test_single_positive_weight_always_drawn(self):
        sampler = CumulativeSampler([0.0, 5.0, 0.0])
        rng = random.Random(0)
        assert all(sampler.draw(rng) == 1 for _ in range(50))

    def test_draw_many_length(self):
        out = CumulativeSampler([1.0, 1.0]).draw_many(random.Random(0), 17)
        assert len(out) == 17
        assert set(out) <= {0, 1}

    def test_proportional_frequencies(self):
        sampler = CumulativeSampler([1.0, 3.0, 6.0])
        rng = random.Random(5)
        hits = Counter(sampler.draw(rng) for _ in range(10000))
        assert abs(hits[0] / 10000 - 0.1) < 0.02
        assert abs(hits[1] / 10000 - 0.3) < 0.02
        assert abs(hits[2] / 10000 - 0.6) < 0.02

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30).filter(
            lambda ws: sum(ws) > 0
        ),
        st.integers(0, 2**31),
    )
    def test_draws_never_hit_zero_weight(self, weights, seed):
        sampler = CumulativeSampler(weights)
        rng = random.Random(seed)
        for _ in range(20):
            index = sampler.draw(rng)
            assert 0 <= index < len(weights)
            assert weights[index] > 0
