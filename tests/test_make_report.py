"""Tests for the report-generation script."""

from __future__ import annotations

import pathlib
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))

import make_report  # noqa: E402


class TestLoadRunFunction:
    def test_loads_known_function(self):
        run = make_report.load_run_function("bench_chiba_nishizeki.py", "run_chiba_nishizeki")
        assert callable(run)

    def test_missing_function_raises(self):
        with pytest.raises(AttributeError):
            make_report.load_run_function("bench_chiba_nishizeki.py", "run_nope")

    def test_experiment_index_is_complete(self):
        # Every bench file must appear in the report index, and every index
        # entry must resolve.
        bench_files = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        indexed = {filename for _, filename, _ in make_report.EXPERIMENTS}
        assert indexed == bench_files
        for _, filename, function in make_report.EXPERIMENTS:
            assert callable(make_report.load_run_function(filename, function))


class TestMain:
    def test_writes_report(self, tmp_path):
        out = tmp_path / "report.md"
        code = make_report.main(["--scale", "tiny", "--only", "E5", "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert "E5" in text
        assert "Lemma 3.1" in text

    def test_only_filter(self, tmp_path):
        out = tmp_path / "report.md"
        make_report.main(["--scale", "tiny", "--only", "E5", "--out", str(out)])
        text = out.read_text()
        assert "E1 (" not in text
