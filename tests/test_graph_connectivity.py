"""Tests for connected components."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import cycle_graph, path_graph, wheel_graph
from repro.graph import Graph
from repro.graph.connectivity import (
    component_labels,
    component_sizes,
    connected_components,
    giant_component_fraction,
    is_connected,
)


class TestComponents:
    def test_empty_graph(self):
        assert connected_components(Graph()) == []
        assert is_connected(Graph())
        assert giant_component_fraction(Graph()) == 0.0

    def test_single_vertex(self):
        g = Graph(vertices=[5])
        assert connected_components(g) == [[5]]
        assert is_connected(g)

    def test_connected_families(self):
        for g in (path_graph(10), cycle_graph(8), wheel_graph(12)):
            assert is_connected(g)
            assert component_sizes(g) == [g.num_vertices]

    def test_two_components_sorted_largest_first(self):
        g = Graph(edges=[(0, 1), (2, 3), (3, 4)])
        comps = connected_components(g)
        assert comps == [[2, 3, 4], [0, 1]]
        assert component_sizes(g) == [3, 2]

    def test_isolated_vertices_are_components(self):
        g = Graph(edges=[(0, 1)], vertices=[7, 8])
        assert len(connected_components(g)) == 3
        assert not is_connected(g)

    def test_giant_fraction(self):
        g = Graph(edges=[(0, 1), (1, 2)], vertices=[9])
        assert giant_component_fraction(g) == 0.75

    def test_labels_consistent(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        labels = component_labels(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_long_path_no_recursion_limit(self):
        # 50k-vertex path: recursive DFS would blow the stack.
        g = path_graph(50_000)
        assert is_connected(g)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda p: p[0] != p[1]),
            max_size=40,
        )
    )
    def test_components_partition_vertices(self, raw_edges):
        edges = list({(min(u, v), max(u, v)) for u, v in raw_edges})
        g = Graph(edges=edges)
        comps = connected_components(g)
        flattened = sorted(v for c in comps for v in c)
        assert flattened == sorted(g.vertices())

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda p: p[0] != p[1]),
            max_size=40,
        )
    )
    def test_edges_stay_within_components(self, raw_edges):
        edges = list({(min(u, v), max(u, v)) for u, v in raw_edges})
        g = Graph(edges=edges)
        labels = component_labels(g)
        for u, v in g.edges():
            assert labels[u] == labels[v]

    def test_matches_networkx(self):
        import networkx as nx

        from repro.generators import erdos_renyi_gnm
        from repro.graph.validation import to_networkx

        g = erdos_renyi_gnm(100, 110, random.Random(3))
        ours = sorted(component_sizes(g), reverse=True)
        theirs = sorted((len(c) for c in nx.connected_components(to_networkx(g))), reverse=True)
        assert ours == theirs
