"""Tests for the R-MAT generator."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.generators.rmat import rmat_graph
from repro.graph import count_triangles, degeneracy


class TestValidation:
    def test_scale_bounds(self):
        with pytest.raises(GraphError):
            rmat_graph(0, 4, random.Random(0))
        with pytest.raises(GraphError):
            rmat_graph(25, 4, random.Random(0))

    def test_edge_factor(self):
        with pytest.raises(GraphError):
            rmat_graph(4, 0, random.Random(0))

    def test_probabilities_sum(self):
        with pytest.raises(GraphError):
            rmat_graph(4, 2, random.Random(0), probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_negative_probability(self):
        with pytest.raises(GraphError):
            rmat_graph(4, 2, random.Random(0), probabilities=(-0.1, 0.4, 0.4, 0.3))


class TestStructure:
    def test_vertex_count(self):
        g = rmat_graph(6, 4, random.Random(1))
        assert g.num_vertices == 64

    def test_edge_count_hits_target(self):
        g = rmat_graph(8, 8, random.Random(2))
        assert g.num_edges == 8 * 256

    def test_dense_saturation_respects_max(self):
        # scale=2 (4 vertices): at most 6 edges regardless of edge_factor.
        g = rmat_graph(2, 100, random.Random(3))
        assert g.num_edges <= 6

    def test_deterministic(self):
        a = rmat_graph(7, 6, random.Random(5))
        b = rmat_graph(7, 6, random.Random(5))
        assert a == b

    def test_skewed_degrees(self):
        # Graph500 parameters produce max degree far above average.
        g = rmat_graph(10, 8, random.Random(4))
        avg = 2 * g.num_edges / g.num_vertices
        assert g.max_degree() > 4 * avg

    def test_low_degeneracy_vs_max_degree(self):
        # The paper's enabling separation: kappa << max degree.
        g = rmat_graph(10, 8, random.Random(4))
        assert degeneracy(g) < g.max_degree() / 3

    def test_contains_triangles(self):
        g = rmat_graph(10, 8, random.Random(4))
        assert count_triangles(g) > 0

    def test_uniform_quadrants_look_like_er(self):
        # a=b=c=d=0.25 is (near-)uniform pair sampling.
        g = rmat_graph(8, 4, random.Random(6), probabilities=(0.25, 0.25, 0.25, 0.25))
        avg = 2 * g.num_edges / g.num_vertices
        assert g.max_degree() < 6 * avg


class TestEndToEnd:
    def test_estimator_on_rmat(self):
        from repro import EstimatorConfig, TriangleCountEstimator
        from repro.core.promise import degeneracy_bracket
        from repro.streams import InMemoryEdgeStream
        from repro.streams.transforms import shuffled

        g = rmat_graph(9, 8, random.Random(7))
        t = count_triangles(g)
        stream = InMemoryEdgeStream.from_graph(g, shuffled(g, random.Random(1)))
        kappa = degeneracy_bracket(stream).upper  # promise from the stream itself
        result = TriangleCountEstimator(EstimatorConfig(seed=2, repetitions=5)).estimate(
            stream, kappa=kappa
        )
        if t >= 50:
            assert abs(result.estimate - t) / t < 0.5
