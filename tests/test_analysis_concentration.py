"""Tests for concentration calculators and variance tools."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis import (
    chebyshev_failure_probability,
    chebyshev_samples,
    chernoff_failure_probability,
    chernoff_samples,
    empirical_moments,
    ideal_estimator_variance_bound,
)
from repro.errors import ParameterError
from repro.generators import book_graph
from repro.graph import count_triangles, edge_degree_sum


class TestChernoff:
    def test_formula(self):
        p = chernoff_failure_probability(samples=1000, mean=0.5, epsilon=0.2)
        assert p == pytest.approx(2 * math.exp(-0.04 * 1000 * 0.5 / 3))

    def test_capped_at_one(self):
        assert chernoff_failure_probability(1, 0.01, 0.1) == 1.0

    def test_monotone_in_samples(self):
        a = chernoff_failure_probability(100, 0.5, 0.2)
        b = chernoff_failure_probability(1000, 0.5, 0.2)
        assert b < a

    def test_samples_inverse(self):
        # chernoff_samples returns enough samples for the target delta.
        n = chernoff_samples(mean=0.3, epsilon=0.2, delta=0.05)
        assert chernoff_failure_probability(n, 0.3, 0.2) <= 0.05

    def test_validation(self):
        with pytest.raises(ParameterError):
            chernoff_failure_probability(0, 0.5, 0.2)
        with pytest.raises(ParameterError):
            chernoff_failure_probability(10, 1.5, 0.2)
        with pytest.raises(ParameterError):
            chernoff_samples(0.0, 0.2, 0.1)

    def test_empirical_indicator_concentration(self):
        # Sanity check the bound against simulation: empirical failure rate
        # must not exceed the Chernoff envelope.
        rng = random.Random(0)
        mean, eps, samples = 0.4, 0.3, 200
        bound = chernoff_failure_probability(samples, mean, eps)
        failures = 0
        trials = 400
        for _ in range(trials):
            avg = sum(1 for _ in range(samples) if rng.random() < mean) / samples
            if abs(avg - mean) >= eps * mean:
                failures += 1
        assert failures / trials <= bound + 0.05


class TestChebyshev:
    def test_formula(self):
        p = chebyshev_failure_probability(variance=4.0, mean=10.0, epsilon=0.5)
        assert p == pytest.approx(4.0 / (0.25 * 100.0))

    def test_capped_at_one(self):
        assert chebyshev_failure_probability(1e9, 1.0, 0.1) == 1.0

    def test_samples_inverse(self):
        k = chebyshev_samples(variance=100.0, mean=10.0, epsilon=0.2, delta=0.1)
        assert chebyshev_failure_probability(100.0 / k, 10.0, 0.2) <= 0.1

    def test_validation(self):
        with pytest.raises(ParameterError):
            chebyshev_failure_probability(-1.0, 1.0, 0.1)
        with pytest.raises(ParameterError):
            chebyshev_failure_probability(1.0, 0.0, 0.1)
        with pytest.raises(ParameterError):
            chebyshev_samples(1.0, 1.0, 0.1, 1.5)


class TestVarianceTools:
    def test_ideal_bound_formula(self):
        g = book_graph(10)
        assert ideal_estimator_variance_bound(g) == edge_degree_sum(g) * count_triangles(g)

    def test_empirical_moments(self):
        m = empirical_moments([2.0, 4.0, 6.0])
        assert m.mean == 4.0
        assert m.variance == pytest.approx(4.0)
        assert m.std == pytest.approx(2.0)
        assert m.relative_std == pytest.approx(0.5)

    def test_moments_need_two_samples(self):
        with pytest.raises(ParameterError):
            empirical_moments([1.0])

    def test_relative_std_zero_mean(self):
        assert empirical_moments([-1.0, 1.0]).relative_std == float("inf")
