"""Randomized cross-mode parity matrix: one estimator, every execution mode.

The engine now has enough independent execution knobs - engine mode,
worker count, fused sweeps, speculative round pairs, shared-memory
transport - that hand-picked parity cases cannot cover the cross
products.  This suite runs seeded random graphs (Erdos-Renyi, power-law
preferential attachment, and star/clique pathologies) through the full
knob matrix and pins the three contracts every mode must honor against
the pure-Python sequential reference:

* **bit-identical estimates**: the final estimate, the whole guessing
  trajectory (every round's guess, median, verdict), and every per-run
  sampling diagnostic are equal - not approximately, exactly;
* **identical RNG consumption**: the root generator ends in the identical
  state (speculative spawns are rewound on discard), and every committed
  round's per-repetition child generator performs the identical number of
  draws;
* **pass/sweep invariants**: logical passes (the paper's budgeted
  quantity) are constant across all modes; physical sweeps depend only on
  the fusion tier - equal to passes unfused, monotonically fewer as
  ``fuse`` and then ``speculate`` engage - and ``sweeps_wasted`` is zero
  whenever speculation is off.

The **tape-format axis** extends the same contract across the storage
substrate: the identical edge sequence read from a text edge list
(:class:`FileEdgeStream`) and from its binary ``.etape`` conversion
(:class:`MmapEdgeStream`) must agree bit-for-bit - estimate, trajectory,
pass totals, and final root RNG state - at every point of the knob
matrix, because the storage format is below the sampling layer and must
be invisible to it.

A small representative subset runs in the fast tier; the full matrix is
marked ``slow`` (deselected by default - run with ``pytest -m slow``).
"""

from __future__ import annotations

import random

import pytest

import repro.core.driver as driver_module
from repro.core import executor
from repro.core.driver import EstimatorConfig, TriangleCountEstimator
from repro.generators import (
    barabasi_albert_graph,
    complete_graph,
    erdos_renyi_gnp,
    star_graph,
)
from repro.graph import count_triangles, degeneracy
from repro.io import write_edgelist
from repro.streams import FileEdgeStream, InMemoryEdgeStream, MmapEdgeStream, shm, write_tape
from repro.streams.transforms import shuffled

REPETITIONS = 3

#: (name, graph builder, seed) - seeded random families plus pathologies.
GRAPHS = [
    ("erdos-renyi", lambda: erdos_renyi_gnp(90, 0.09, random.Random(11)), 5),
    ("power-law", lambda: barabasi_albert_graph(140, 4, random.Random(7)), 3),
    ("star", lambda: star_graph(80), 1),
    ("clique", lambda: complete_graph(18), 9),
]

#: (engine_mode, workers, shm_enabled) execution substrates.  Shared
#: memory only participates when a worker pool exists to ship blocks to.
SUBSTRATES = [
    ("python", 1, True),
    ("chunked", 1, True),
    ("chunked", 2, True),
    ("chunked", 2, False),
    ("chunked", 4, True),
    ("chunked", 4, False),
]

#: The fusion tiers ``(fuse, speculate, speculate_depth)``.  Depth only
#: matters when speculation is on; the unspeculated tiers pin it at the
#: default so tier keys stay unique.  The fast tier samples the depth
#: axis; the full product {2, 3, 4} runs in the slow tier.
TIERS_FAST = [
    (False, False, 2),
    (True, False, 2),
    (False, True, 2),
    (True, True, 3),
    (False, True, 4),
]
TIERS_FULL = [(False, False, 2), (True, False, 2)] + [
    (fuse, True, depth) for fuse in (False, True) for depth in (2, 3, 4)
]


class CountingRandom(random.Random):
    """A stdlib generator that counts its primitive draws."""

    def __init__(self) -> None:
        super().__init__(0)
        self.draws = 0

    def getrandbits(self, k: int) -> int:
        self.draws += 1
        return super().getrandbits(k)

    def random(self) -> float:
        self.draws += 1
        return super().random()


def _run_instrumented(monkeypatch, stream, kappa, config):
    """One estimate with root-state capture and per-child draw counting."""
    roots = []
    real_make_rng = driver_module.make_rng
    real_spawn = driver_module.spawn
    children = {}

    def recording_make_rng(seed):
        rng = real_make_rng(seed)
        roots.append(rng)
        return rng

    def counting_spawn(parent, label):
        child = real_spawn(parent, label)
        counting = CountingRandom()
        counting.setstate(child.getstate())
        children[label] = counting
        return counting

    with pytest.MonkeyPatch.context() as patch:
        patch.setattr(driver_module, "make_rng", recording_make_rng)
        patch.setattr(driver_module, "spawn", counting_spawn)
        result = TriangleCountEstimator(config).estimate(stream, kappa=kappa)
    committed_labels = {
        f"round{i}/rep{rep}"
        for i in range(len(result.rounds))
        for rep in range(config.repetitions)
    }
    child_draws = {
        label: children[label].draws
        for label in sorted(committed_labels)
        if label in children
    }
    return result, roots[-1].getstate(), child_draws


def _sampling_fields(run):
    """Statistical fields only: accounting (passes/sweeps/space) varies by
    fusion tier - fused rounds charge the speculative pass-5 and meter the
    incident buffer - and is pinned per tier separately."""
    return (
        run.estimate,
        run.r,
        run.ell,
        run.d_r,
        run.wedges_closed,
        run.assigned_hits,
        run.distinct_candidate_triangles,
    )


def _trajectory(result, accounting=False):
    return [
        (
            r.t_guess,
            r.median_estimate,
            r.accepted,
            [
                _sampling_fields(run)
                + (
                    (run.passes_used, run.sweeps_used, run.space_words_peak)
                    if accounting
                    else ()
                )
                for run in r.runs
            ],
        )
        for r in result.rounds
    ]


def _config(mode, workers, fuse, speculate, depth, seed):
    return EstimatorConfig(
        seed=seed,
        repetitions=REPETITIONS,
        engine_mode=mode,
        chunk_size=64,
        workers=workers,
        fuse=fuse,
        speculate=speculate,
        speculate_depth=depth,
    )


def _check_matrix(monkeypatch, graph_name, build_graph, seed, substrates, tiers=None):
    tiers = tiers if tiers is not None else TIERS_FAST
    monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 32)
    graph = build_graph()
    kappa = max(1, degeneracy(graph))
    stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(seed)))
    exact = count_triangles(graph)

    reference, ref_root_state, ref_child_draws = _run_instrumented(
        monkeypatch, stream, kappa, _config("python", 1, False, False, 2, seed)
    )
    ref_trajectory = _trajectory(reference)
    tier_accounting = {}

    for mode, workers, shm_enabled in substrates:
        for fuse, speculate, depth in tiers:
            monkeypatch.setattr(shm, "_disabled", not shm_enabled)
            try:
                result, root_state, child_draws = _run_instrumented(
                    monkeypatch,
                    stream,
                    kappa,
                    _config(mode, workers, fuse, speculate, depth, seed),
                )
            finally:
                monkeypatch.setattr(shm, "_disabled", False)
            label = (
                f"{graph_name}/{mode}/w{workers}/shm{int(shm_enabled)}"
                f"/f{int(fuse)}s{int(speculate)}d{depth}"
            )

            # Bit-identical estimates and statistical trajectory.
            assert result.estimate == reference.estimate, label
            assert _trajectory(result) == ref_trajectory, label

            # Identical RNG consumption: final root state (speculative
            # spawns rewound) and committed child draw counts.
            assert root_state == ref_root_state, label
            assert child_draws == ref_child_draws, label

            # Accounting depends only on the fusion tier (fuse x speculate
            # x depth), never on the substrate (engine / workers / shm):
            # the first run of each tier pins passes, sweeps, waste,
            # space, and the per-run accounting trajectory for every
            # other substrate.
            key = (fuse, speculate, depth)
            accounting = (
                result.passes_total,
                result.sweeps_total,
                result.sweeps_wasted,
                result.passes_wasted,
                result.space_words_peak,
                _trajectory(result, accounting=True),
            )
            if key in tier_accounting:
                assert accounting == tier_accounting[key], label
            else:
                tier_accounting[key] = accounting
            if not speculate:
                assert result.sweeps_wasted == 0, label
                assert result.passes_wasted == 0, label

            # Unfused sequential execution reads the tape once per pass.
            if key == (False, False, 2):
                assert result.sweeps_total == result.passes_total, label
                assert result.passes_total == reference.passes_total, label

    # Speculation never changes the logical-pass total of its fuse tier
    # (it commits exactly the rounds the sequential loop would run) - at
    # any depth.
    for fuse, speculate, depth in tiers:
        if speculate:
            assert (
                tier_accounting[(fuse, True, depth)][0]
                == tier_accounting[(fuse, False, 2)][0]
            ), (graph_name, fuse, depth)
    # Monotone sweep reduction across fusion tiers: every tier is no worse
    # than unfused-sequential, and speculation at any depth never loses to
    # its unspeculated tier (committed sweeps).
    baseline = tier_accounting[(False, False, 2)][1]
    for key, accounting in tier_accounting.items():
        assert accounting[1] <= baseline, (graph_name, key)
    for fuse, speculate, depth in tiers:
        if speculate:
            assert (
                tier_accounting[(fuse, True, depth)][1]
                <= tier_accounting[(fuse, False, 2)][1]
            ), (graph_name, fuse, depth)
    # Multi-round estimates are where speculation must actually pay, even
    # counting the physically-performed wasted sweeps.
    if len(reference.rounds) > 1:
        for fuse, speculate, depth in tiers:
            if speculate:
                tier = tier_accounting[(fuse, True, depth)]
                spec_physical = tier[1] + tier[2]
                assert spec_physical < tier_accounting[(fuse, False, 2)][1], (
                    graph_name,
                    fuse,
                    depth,
                )
    # Sanity: the estimator still estimates (star walks the guess to 0).
    if exact == 0:
        assert reference.estimate == 0.0


@pytest.mark.parametrize("name,build,seed", GRAPHS, ids=[g[0] for g in GRAPHS])
def test_parity_matrix_fast_tier(monkeypatch, name, build, seed):
    """Representative subset: serial python + chunked, one pooled substrate,
    the depth axis sampled (one tier each at depths 2, 3, and 4)."""
    fast_substrates = [("python", 1, True), ("chunked", 1, True), ("chunked", 2, True)]
    _check_matrix(monkeypatch, name, build, seed, fast_substrates, TIERS_FAST)


@pytest.mark.slow
@pytest.mark.parametrize("name,build,seed", GRAPHS, ids=[g[0] for g in GRAPHS])
def test_parity_matrix_full(monkeypatch, name, build, seed):
    """The full matrix: workers {1,2,4} x shm on/off x fuse x depth {2,3,4}."""
    _check_matrix(monkeypatch, name, build, seed, SUBSTRATES, TIERS_FULL)


def _check_format_parity(monkeypatch, tmp_path, name, build_graph, seed, substrates, tiers):
    """Text vs ``.etape``: bit-identical at every point of the knob matrix."""
    monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 32)
    graph = build_graph()
    kappa = max(1, degeneracy(graph))
    txt = tmp_path / f"{name}.txt"
    write_edgelist(graph, txt)
    tape = tmp_path / f"{name}.etape"
    header = write_tape(txt, tape)
    assert header.num_edges == graph.num_edges

    for mode, workers, shm_enabled in substrates:
        for fuse, speculate, depth in tiers:
            config = _config(mode, workers, fuse, speculate, depth, seed)
            monkeypatch.setattr(shm, "_disabled", not shm_enabled)
            try:
                text_result, text_root, text_draws = _run_instrumented(
                    monkeypatch, FileEdgeStream(txt), kappa, config
                )
                tape_result, tape_root, tape_draws = _run_instrumented(
                    monkeypatch, MmapEdgeStream(tape), kappa, config
                )
            finally:
                monkeypatch.setattr(shm, "_disabled", False)
            label = (
                f"{name}/{mode}/w{workers}/shm{int(shm_enabled)}"
                f"/f{int(fuse)}s{int(speculate)}d{depth}"
            )
            assert tape_result.estimate == text_result.estimate, label
            assert _trajectory(tape_result, accounting=True) == _trajectory(
                text_result, accounting=True
            ), label
            assert tape_result.passes_total == text_result.passes_total, label
            assert tape_result.sweeps_total == text_result.sweeps_total, label
            assert tape_root == text_root, label
            assert tape_draws == text_draws, label


#: Tape-axis fast tier: both serial engines plus a pooled substrate with
#: shm on and off, across the sampled fusion/depth tiers.
FORMAT_SUBSTRATES_FAST = [
    ("python", 1, True),
    ("chunked", 2, True),
    ("chunked", 2, False),
]

#: The fast tier samples two graph families; the full product runs slow.
FORMAT_GRAPHS_FAST = [g for g in GRAPHS if g[0] in ("erdos-renyi", "power-law")]


@pytest.mark.parametrize(
    "name,build,seed", FORMAT_GRAPHS_FAST, ids=[g[0] for g in FORMAT_GRAPHS_FAST]
)
def test_tape_format_parity_fast_tier(monkeypatch, tmp_path, name, build, seed):
    """Text vs binary tape, representative substrates and sampled tiers."""
    _check_format_parity(
        monkeypatch, tmp_path, name, build, seed, FORMAT_SUBSTRATES_FAST, TIERS_FAST
    )


@pytest.mark.slow
@pytest.mark.parametrize("name,build,seed", GRAPHS, ids=[g[0] for g in GRAPHS])
def test_tape_format_parity_full(monkeypatch, tmp_path, name, build, seed):
    """Text vs binary tape over the full knob product: workers {1,2,4} x
    shm on/off x fuse x depth {2,3,4}."""
    _check_format_parity(monkeypatch, tmp_path, name, build, seed, SUBSTRATES, TIERS_FULL)


@pytest.mark.slow
def test_parity_matrix_random_orders(monkeypatch):
    """Randomized stream orders: fresh seeds each combination, full tiers."""
    for order_seed in range(4):
        graph = erdos_renyi_gnp(70, 0.1, random.Random(100 + order_seed))
        _check_matrix(
            monkeypatch,
            f"er-order{order_seed}",
            lambda g=graph: g,
            order_seed,
            [("python", 1, True), ("chunked", 2, True), ("chunked", 2, False)],
            TIERS_FULL,
        )
