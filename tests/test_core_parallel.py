"""Tests for the parallel multi-instance runner (shared six passes)."""

from __future__ import annotations

import random

import pytest

from repro import EstimatorConfig, TriangleCountEstimator
from repro.analysis.variance import empirical_moments
from repro.core.params import ParameterPlan
from repro.core.parallel import run_parallel_estimates
from repro.generators import book_graph, cycle_graph, wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream, SpaceMeter
from repro.streams.transforms import shuffled


def plan_for(graph, kappa, epsilon=0.25):
    return ParameterPlan.build(
        graph.num_vertices,
        graph.num_edges,
        kappa,
        float(max(1, count_triangles(graph))),
        epsilon,
    )


class TestMechanics:
    def test_six_shared_passes(self):
        graph = wheel_graph(100)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph)
        rngs = [random.Random(s) for s in range(5)]
        results = run_parallel_estimates(stream, plan, rngs)
        assert len(results) == 5
        # All instances report the same shared pass count, at most 6.
        assert len({r.passes_used for r in results}) == 1
        assert results[0].passes_used <= 6

    def test_four_passes_when_no_triangles(self):
        graph = cycle_graph(40)
        plan = ParameterPlan.build(40, 40, 2, 10.0, 0.3)
        stream = InMemoryEdgeStream.from_graph(graph)
        results = run_parallel_estimates(stream, plan, [random.Random(1), random.Random(2)])
        assert all(r.estimate == 0.0 for r in results)
        assert results[0].passes_used == 4

    def test_empty_instance_list_rejected(self):
        graph = wheel_graph(20)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph)
        with pytest.raises(ValueError):
            run_parallel_estimates(stream, plan, [])

    def test_stream_mismatch_rejected(self):
        graph = wheel_graph(20)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(wheel_graph(30))
        with pytest.raises(ValueError, match="plan was built"):
            run_parallel_estimates(stream, plan, [random.Random(0)])

    def test_ensemble_space_reported(self):
        graph = wheel_graph(100)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph)
        meter = SpaceMeter()
        results = run_parallel_estimates(
            stream, plan, [random.Random(s) for s in range(3)], meter=meter
        )
        # Every result reports the shared ensemble peak.
        assert all(r.space_words_peak == meter.peak_words for r in results)
        # The ensemble holds 3x the pass-1 sample.
        assert meter.peak_breakdown()["R"] == 3 * 2 * plan.r

    def test_deterministic(self):
        graph = wheel_graph(80)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph)
        a = run_parallel_estimates(stream, plan, [random.Random(5), random.Random(6)])
        b = run_parallel_estimates(stream, plan, [random.Random(5), random.Random(6)])
        assert [r.estimate for r in a] == [r.estimate for r in b]


class TestStatisticalEquivalence:
    def test_instances_are_unbiased(self):
        # Mean over many parallel instances approaches T, exactly like the
        # sequential runner (E[X] = T-bar).
        graph = wheel_graph(120)
        t = count_triangles(graph)
        plan = plan_for(graph, 3)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(1)))
        rngs = [random.Random(s) for s in range(24)]
        results = run_parallel_estimates(stream, plan, rngs)
        moments = empirical_moments([r.estimate for r in results])
        se = moments.std / (len(results) ** 0.5)
        assert abs(moments.mean - t) <= 4 * se + 0.1 * t

    def test_instances_look_independent(self):
        # Crude independence check: the spread across parallel instances
        # matches the spread across sequential runs within a factor.
        from repro.core.estimator import run_single_estimate

        graph = book_graph(100)
        plan = plan_for(graph, 2)
        stream = InMemoryEdgeStream.from_graph(graph)
        parallel = [
            r.estimate
            for r in run_parallel_estimates(
                stream, plan, [random.Random(s) for s in range(16)]
            )
        ]
        sequential = [
            run_single_estimate(stream, plan, random.Random(100 + s)).estimate
            for s in range(16)
        ]
        p = empirical_moments(parallel)
        q = empirical_moments(sequential)
        assert p.std <= 3 * q.std + 1.0
        assert q.std <= 3 * p.std + 1.0


class TestDriverIntegration:
    def test_shared_passes_round_is_six(self):
        graph = wheel_graph(200)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(0)))
        cfg = EstimatorConfig(seed=3, repetitions=5, t_hint=float(t), share_passes=True)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert result.passes_total <= 6
        assert abs(result.estimate - t) / t < 0.35

    def test_sequential_mode_still_works(self):
        graph = wheel_graph(200)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(0)))
        cfg = EstimatorConfig(seed=3, repetitions=3, t_hint=float(t), share_passes=False)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert result.passes_total <= 18
        assert abs(result.estimate - t) / t < 0.35

    def test_full_search_pass_budget(self):
        # With shared passes the whole unknown-T search costs 6 passes per
        # round - a constant-factor-of-log total, never 6*reps*rounds.
        graph = wheel_graph(300)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(0)))
        cfg = EstimatorConfig(seed=2, repetitions=5, share_passes=True)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert result.passes_total <= 6 * len(result.rounds)
