"""Edge cases and less-traveled paths across modules."""

from __future__ import annotations

import random

import pytest

from repro import EstimatorConfig, TriangleCountEstimator
from repro.core.params import ParameterPlan
from repro.errors import ParameterError
from repro.generators import book_graph, complete_graph, star_graph, wheel_graph
from repro.graph import Graph, count_triangles
from repro.streams import InMemoryEdgeStream


class TestTinyInstances:
    def test_k3_estimate(self):
        stream = InMemoryEdgeStream.from_graph(complete_graph(3))
        result = TriangleCountEstimator(EstimatorConfig(seed=0, repetitions=3)).estimate(
            stream, kappa=2
        )
        # One triangle; sampling can only see it or miss it.
        assert 0.0 <= result.estimate <= 4.0

    def test_k4_estimate(self):
        stream = InMemoryEdgeStream.from_graph(complete_graph(4))
        result = TriangleCountEstimator(EstimatorConfig(seed=1, repetitions=5)).estimate(
            stream, kappa=3
        )
        assert result.estimate == pytest.approx(4.0, rel=1.0)

    def test_star_no_triangles(self):
        stream = InMemoryEdgeStream.from_graph(star_graph(50))
        result = TriangleCountEstimator(EstimatorConfig(seed=1, repetitions=3)).estimate(
            stream, kappa=1
        )
        assert result.estimate == 0.0

    def test_one_page_book(self):
        stream = InMemoryEdgeStream.from_graph(book_graph(1))
        result = TriangleCountEstimator(EstimatorConfig(seed=2, repetitions=3)).estimate(
            stream, kappa=2
        )
        assert 0.0 <= result.estimate <= 4.0


class TestPlanBoundaries:
    def test_epsilon_near_one(self):
        plan = ParameterPlan.build(100, 200, 3, 50.0, 0.99)
        assert plan.r >= 8
        assert plan.assignment_cutoff == pytest.approx(3 / 1.98)

    def test_epsilon_tiny(self):
        plan = ParameterPlan.build(100, 200, 3, 50.0, 0.01)
        # 1/eps^2 = 10^4 blows past the 4m cap.
        assert plan.r == 4 * 200

    def test_kappa_equals_sqrt_2m(self):
        # The paper notes kappa <= sqrt(2m); plans must accept the extreme.
        import math

        m = 200
        kappa = int(math.isqrt(2 * m))
        plan = ParameterPlan.build(100, m, kappa, 50.0, 0.3)
        assert plan.r >= 8

    def test_t_guess_above_cor32_bound(self):
        # Guesses above 2*m*kappa are legal (just overly optimistic).
        plan = ParameterPlan.build(100, 200, 3, 5000.0, 0.3)
        assert plan.r == 8  # floor


class TestDriverMisc:
    def test_zero_repetition_rejected_at_config(self):
        with pytest.raises(ParameterError):
            EstimatorConfig(repetitions=0)

    def test_single_repetition_runs(self):
        stream = InMemoryEdgeStream.from_graph(wheel_graph(60))
        cfg = EstimatorConfig(seed=1, repetitions=1)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert result.estimate >= 0.0

    def test_even_repetitions_median(self):
        stream = InMemoryEdgeStream.from_graph(wheel_graph(60))
        cfg = EstimatorConfig(seed=1, repetitions=4)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert result.estimate >= 0.0

    def test_huge_kappa_promise(self):
        # A wildly pessimistic promise costs space, not correctness.
        graph = wheel_graph(80)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph)
        cfg = EstimatorConfig(seed=3, repetitions=3, t_hint=float(t))
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=50)
        assert abs(result.estimate - t) / t < 0.4

    def test_result_round_records(self):
        graph = wheel_graph(100)
        stream = InMemoryEdgeStream.from_graph(graph)
        cfg = EstimatorConfig(seed=5, repetitions=3)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        for r in result.rounds:
            assert len(r.runs) == 3
            assert r.median_estimate == sorted(x.estimate for x in r.runs)[1]


class TestGraphMisc:
    def test_vertices_iteration_includes_isolated(self):
        g = Graph(edges=[(0, 1)], vertices=[5])
        assert sorted(g.vertices()) == [0, 1, 5]

    def test_edges_of_empty_graph(self):
        assert list(Graph().edges()) == []

    def test_induced_subgraph_empty_keep(self, wheel10):
        sub = wheel10.induced_subgraph([])
        assert sub.num_vertices == 0

    def test_degree_sequence_of_book(self):
        g = book_graph(5)
        degrees = sorted(g.degrees().values(), reverse=True)
        assert degrees[:2] == [6, 6]  # the two spine endpoints
        assert all(d == 2 for d in degrees[2:])


class TestCliGenerateAllFamilies:
    @pytest.mark.parametrize(
        "family",
        [
            "wheel",
            "book",
            "friendship",
            "triangulated-grid",
            "ba",
            "chung-lu",
            "watts-strogatz",
            "er-sparse",
            "planted",
            "rmat",
        ],
    )
    def test_generate_then_stats(self, tmp_path, family, capsys):
        from repro.cli import main

        out = tmp_path / f"{family}.txt"
        assert main(["generate", family, "--out", str(out), "--scale", "tiny"]) == 0
        assert main(["stats", str(out)]) == 0
        assert "kappa" in capsys.readouterr().out
