"""Tests for repro.sampling.reservoir: uniformity, accounting, and the
draw-for-draw continuation contract behind durable snapshots."""

from __future__ import annotations

import json
import random
from collections import Counter

import pytest

from repro.sampling import Reservoir, SingleItemReservoir
from repro.streams import SpaceMeter


class TestReservoirBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Reservoir(0, random.Random(0))

    def test_holds_everything_below_capacity(self):
        r = Reservoir(5, random.Random(0))
        for x in range(3):
            r.offer(x)
        assert sorted(r.sample()) == [0, 1, 2]

    def test_never_exceeds_capacity(self):
        r = Reservoir(4, random.Random(0))
        for x in range(100):
            r.offer(x)
        assert len(r.sample()) == 4
        assert r.offers == 100

    def test_sample_is_subset_of_offers(self):
        r = Reservoir(4, random.Random(1))
        for x in range(50):
            r.offer(x)
        assert set(r.sample()) <= set(range(50))

    def test_meter_charged_once_per_slot(self):
        meter = SpaceMeter()
        r = Reservoir(3, random.Random(0), meter=meter, words_per_item=2)
        for x in range(20):
            r.offer(x)
        assert meter.peak_words == 6


class TestReservoirUniformity:
    def test_inclusion_probability_close_to_k_over_n(self):
        # Offer 0..19 to a k=5 reservoir many times; each item should be
        # retained with probability 1/4.
        hits = Counter()
        trials = 4000
        rng = random.Random(42)
        for _ in range(trials):
            r = Reservoir(5, rng)
            for x in range(20):
                r.offer(x)
            hits.update(r.sample())
        for x in range(20):
            assert abs(hits[x] / trials - 0.25) < 0.05, f"item {x}"


class TestSingleItemReservoir:
    def test_empty_returns_none(self):
        assert SingleItemReservoir(random.Random(0)).sample() is None

    def test_single_offer_kept(self):
        r = SingleItemReservoir(random.Random(0))
        r.offer("a")
        assert r.sample() == "a"
        assert r.offers == 1

    def test_uniform_over_offers(self):
        rng = random.Random(7)
        hits = Counter()
        trials = 6000
        for _ in range(trials):
            r = SingleItemReservoir(rng)
            for x in range(8):
                r.offer(x)
            hits[r.sample()] += 1
        for x in range(8):
            assert abs(hits[x] / trials - 1 / 8) < 0.03, f"item {x}"

    def test_meter_charged_once(self):
        meter = SpaceMeter()
        r = SingleItemReservoir(random.Random(0), meter=meter, words_per_item=1)
        for x in range(10):
            r.offer(x)
        assert meter.peak_words == 1


class TestReservoirStateDict:
    """The durable-snapshot building block: a reservoir restored from its
    ``state_dict`` makes the *identical* keep/evict decision on every
    subsequent offer (draw-for-draw continuation)."""

    @pytest.mark.parametrize("cut", [0, 3, 40, 99])
    def test_continuation_is_draw_for_draw(self, cut):
        items = [(i, i + 1) for i in range(100)]
        original = Reservoir(5, random.Random(11))
        for item in items[:cut]:
            original.offer(item)
        state = original.state_dict()
        restored = Reservoir(5, random.Random(999))  # a cold generator
        restored.load_state_dict(state)
        assert restored.offers == original.offers
        assert restored.sample() == original.sample()
        for item in items[cut:]:
            original.offer(item)
            restored.offer(item)
            assert restored.sample() == original.sample()

    def test_state_survives_json(self):
        original = Reservoir(4, random.Random(3))
        for i in range(30):
            original.offer((i, i * 2))
        state = json.loads(json.dumps(original.state_dict()))
        restored = Reservoir(4, random.Random(0))
        restored.load_state_dict(state)
        # Tuple items come back as tuples, not the lists JSON stores.
        assert restored.sample() == original.sample()
        for i in range(30, 60):
            original.offer((i, i * 2))
            restored.offer((i, i * 2))
        assert restored.sample() == original.sample()

    def test_capacity_mismatch_rejected(self):
        original = Reservoir(4, random.Random(0))
        with pytest.raises(ValueError, match="capacity mismatch"):
            Reservoir(5, random.Random(0)).load_state_dict(original.state_dict())

    def test_overfull_state_rejected(self):
        state = Reservoir(2, random.Random(0)).state_dict()
        state["items"] = [1, 2, 3]
        with pytest.raises(ValueError, match="capacity"):
            Reservoir(2, random.Random(0)).load_state_dict(state)

    def test_restore_recharges_the_meter(self):
        original = Reservoir(3, random.Random(0), words_per_item=2)
        for i in range(10):
            original.offer(i)
        meter = SpaceMeter()
        restored = Reservoir(3, random.Random(0), meter=meter, words_per_item=2)
        restored.load_state_dict(original.state_dict())
        assert meter.peak_words == 6

    @pytest.mark.parametrize("cut", [0, 1, 7])
    def test_single_item_continuation(self, cut):
        original = SingleItemReservoir(random.Random(5))
        for i in range(cut):
            original.offer((i, i))
        state = json.loads(json.dumps(original.state_dict()))
        restored = SingleItemReservoir(random.Random(17))
        restored.load_state_dict(state)
        assert restored.offers == original.offers
        assert restored.sample() == original.sample()
        for i in range(cut, 50):
            original.offer((i, i))
            restored.offer((i, i))
            assert restored.sample() == original.sample()

    def test_single_item_restore_charges_meter_once(self):
        original = SingleItemReservoir(random.Random(0))
        original.offer("a")
        meter = SpaceMeter()
        restored = SingleItemReservoir(random.Random(0), meter=meter)
        restored.load_state_dict(original.state_dict())
        restored.load_state_dict(original.state_dict())  # idempotent charge
        assert restored.sample() == "a"
        assert meter.peak_words == 1
