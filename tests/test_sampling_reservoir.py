"""Tests for repro.sampling.reservoir: uniformity and accounting."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.sampling import Reservoir, SingleItemReservoir
from repro.streams import SpaceMeter


class TestReservoirBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Reservoir(0, random.Random(0))

    def test_holds_everything_below_capacity(self):
        r = Reservoir(5, random.Random(0))
        for x in range(3):
            r.offer(x)
        assert sorted(r.sample()) == [0, 1, 2]

    def test_never_exceeds_capacity(self):
        r = Reservoir(4, random.Random(0))
        for x in range(100):
            r.offer(x)
        assert len(r.sample()) == 4
        assert r.offers == 100

    def test_sample_is_subset_of_offers(self):
        r = Reservoir(4, random.Random(1))
        for x in range(50):
            r.offer(x)
        assert set(r.sample()) <= set(range(50))

    def test_meter_charged_once_per_slot(self):
        meter = SpaceMeter()
        r = Reservoir(3, random.Random(0), meter=meter, words_per_item=2)
        for x in range(20):
            r.offer(x)
        assert meter.peak_words == 6


class TestReservoirUniformity:
    def test_inclusion_probability_close_to_k_over_n(self):
        # Offer 0..19 to a k=5 reservoir many times; each item should be
        # retained with probability 1/4.
        hits = Counter()
        trials = 4000
        rng = random.Random(42)
        for _ in range(trials):
            r = Reservoir(5, rng)
            for x in range(20):
                r.offer(x)
            hits.update(r.sample())
        for x in range(20):
            assert abs(hits[x] / trials - 0.25) < 0.05, f"item {x}"


class TestSingleItemReservoir:
    def test_empty_returns_none(self):
        assert SingleItemReservoir(random.Random(0)).sample() is None

    def test_single_offer_kept(self):
        r = SingleItemReservoir(random.Random(0))
        r.offer("a")
        assert r.sample() == "a"
        assert r.offers == 1

    def test_uniform_over_offers(self):
        rng = random.Random(7)
        hits = Counter()
        trials = 6000
        for _ in range(trials):
            r = SingleItemReservoir(rng)
            for x in range(8):
                r.offer(x)
            hits[r.sample()] += 1
        for x in range(8):
            assert abs(hits[x] / trials - 1 / 8) < 0.03, f"item {x}"

    def test_meter_charged_once(self):
        meter = SpaceMeter()
        r = SingleItemReservoir(random.Random(0), meter=meter, words_per_item=1)
        for x in range(10):
            r.offer(x)
        assert meter.peak_words == 1
