"""Repository self-consistency: docs, exports, and experiment index agree.

These tests keep the documentation honest as the code evolves: every bench
target named in DESIGN.md must exist, every ``__all__`` name must resolve,
and every example must at least import-compile.
"""

from __future__ import annotations

import ast
import importlib
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.cliques",
    "repro.core",
    "repro.generators",
    "repro.graph",
    "repro.harness",
    "repro.io",
    "repro.lowerbound",
    "repro.sampling",
    "repro.sketches",
    "repro.streams",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_has_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, package


class TestDesignIndex:
    def test_every_bench_target_exists(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        targets = {
            token
            for token in design.split("`")
            if token.startswith("benchmarks/bench_") and token.endswith(".py")
        }
        assert targets, "DESIGN.md names no bench targets?"
        for target in targets:
            assert (REPO / target).exists(), f"DESIGN.md references missing {target}"

    def test_every_bench_file_is_indexed(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for path in sorted((REPO / "benchmarks").glob("bench_*.py")):
            assert f"benchmarks/{path.name}" in design, (
                f"{path.name} missing from the DESIGN.md experiment index"
            )

    def test_experiments_md_covers_experiment_ids(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        experiments = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        # Every E<number> id in the DESIGN index table should be discussed
        # (or at least mentioned) in EXPERIMENTS.md or be a table-only id.
        import re

        ids = set(re.findall(r"\| (E\d+) \|", design))
        assert ids >= {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
        documented = set(re.findall(r"(E\d+)", experiments))
        core = {f"E{i}" for i in range(1, 12)}
        assert core <= documented, f"EXPERIMENTS.md missing {core - documented}"


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        sorted(p.name for p in (REPO / "examples").glob("*.py")),
    )
    def test_example_parses_and_has_main(self, script):
        source = (REPO / "examples" / script).read_text(encoding="utf-8")
        tree = ast.parse(source)
        names = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
        assert "main" in names, f"{script} has no main()"
        assert ast.get_docstring(tree), f"{script} has no module docstring"

    def test_at_least_five_examples(self):
        assert len(list((REPO / "examples").glob("*.py"))) >= 5


class TestReadme:
    def test_readme_quickstart_modules_exist(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        for module in ("repro.generators", "repro.streams"):
            assert module.replace("repro.", "") in text
        assert "EXPERIMENTS.md" in text
        assert "DESIGN.md" in text
