"""Tests for the binary ``.etape`` tape format (repro.streams.tape).

Covers the format contract end to end: exact round trips (including the
shapes text validation would reject - self-loops, repeated edges), typed
rejection of every structural violation, fingerprint stability, and the
magic-byte auto-detection every file-loading entry point relies on.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.errors import StreamError, TapeFormatError
from repro.generators import barabasi_albert_graph
from repro.io import write_edgelist
from repro.streams import (
    FileEdgeStream,
    InMemoryEdgeStream,
    MmapEdgeStream,
    is_tape,
    open_edge_stream,
    tape_fingerprint,
    write_tape,
)
from repro.streams.tape import (
    HEADER_BYTES,
    MAGIC,
    read_header,
    verify_tape,
)


def _tape_from(tmp_path, edges, name="t.etape", **write_kwargs):
    path = tmp_path / name
    write_tape(InMemoryEdgeStream(edges, validate=False), path, **write_kwargs)
    return path


class TestRoundTrip:
    def test_empty_stream(self, tmp_path):
        path = _tape_from(tmp_path, [])
        stream = MmapEdgeStream(path)
        assert list(stream) == []
        assert len(stream) == 0
        assert stream.stats().num_edges == 0
        assert stream.stats().max_vertex_id == -1
        header = read_header(path)
        assert header.num_edges == 0
        assert header.max_vertex_id == -1
        assert header.canonical  # trivially, there is nothing non-canonical
        verify_tape(path)

    def test_canonical_edges_roundtrip_exactly(self, tmp_path):
        edges = [(0, 1), (1, 2), (0, 2), (2, 9)]
        path = _tape_from(tmp_path, edges)
        assert list(MmapEdgeStream(path)) == edges
        assert read_header(path).canonical

    def test_self_loops_preserved_verbatim(self, tmp_path):
        # Conversion never validates or reorders: dirt goes through as-is.
        edges = [(3, 3), (0, 1), (5, 5)]
        path = _tape_from(tmp_path, edges)
        assert list(MmapEdgeStream(path)) == edges
        assert not read_header(path).canonical

    def test_multigraph_repeats_preserved(self, tmp_path):
        edges = [(0, 1), (0, 1), (1, 2), (0, 1)]
        path = _tape_from(tmp_path, edges)
        assert list(MmapEdgeStream(path)) == edges
        assert len(MmapEdgeStream(path)) == 4

    def test_stream_longer_than_chunk_size(self, tmp_path):
        edges = [(i, i + 1) for i in range(1000)]
        path = _tape_from(tmp_path, edges, chunk_size=64)
        stream = MmapEdgeStream(path)
        assert list(stream) == edges
        # Chunked replay concatenates back to the same sequence.
        total = [tuple(row) for chunk in stream.iter_chunks(37) for row in chunk.tolist()]
        assert total == edges

    def test_text_file_source_matches_text_stream(self, tmp_path, wheel10):
        txt = tmp_path / "wheel.txt"
        write_edgelist(wheel10, txt, header=["wheel"])
        tape = tmp_path / "wheel.etape"
        header = write_tape(txt, tape)
        assert header.num_edges == wheel10.num_edges
        assert list(MmapEdgeStream(tape)) == list(FileEdgeStream(txt))
        assert MmapEdgeStream(tape).stats() == FileEdgeStream(txt).stats()

    def test_tape_source_copies_through(self, tmp_path):
        edges = [(0, 1), (1, 2)]
        first = _tape_from(tmp_path, edges, name="a.etape")
        second = tmp_path / "b.etape"
        write_tape(first, second)
        assert first.read_bytes() == second.read_bytes()

    def test_write_tape_rejects_bad_chunk_size(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_size"):
            write_tape(InMemoryEdgeStream([]), tmp_path / "x.etape", chunk_size=0)

    def test_negative_vertex_ids_not_canonical(self, tmp_path):
        path = _tape_from(tmp_path, [(-4, 2)])
        assert list(MmapEdgeStream(path)) == [(-4, 2)]
        assert not read_header(path).canonical


class TestStructuralValidation:
    def _valid_tape(self, tmp_path):
        return _tape_from(tmp_path, [(0, 1), (1, 2), (0, 2)])

    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamError, match="not found or unreadable"):
            read_header(tmp_path / "nope.etape")

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.etape"
        path.write_bytes(MAGIC + b"\x00" * 8)  # far short of 64 bytes
        with pytest.raises(TapeFormatError, match="truncated tape header"):
            read_header(path)

    def test_bad_magic(self, tmp_path):
        path = self._valid_tape(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[:8] = b"NOTATAPE"
        path.write_bytes(bytes(blob))
        with pytest.raises(TapeFormatError, match="bad magic"):
            read_header(path)
        assert not is_tape(path)

    def test_version_mismatch(self, tmp_path):
        path = self._valid_tape(tmp_path)
        blob = bytearray(path.read_bytes())
        struct.pack_into("<I", blob, 8, 99)
        path.write_bytes(bytes(blob))
        with pytest.raises(TapeFormatError, match="unsupported tape version 99"):
            read_header(path)

    def test_corrupt_counts(self, tmp_path):
        path = self._valid_tape(tmp_path)
        blob = bytearray(path.read_bytes())
        struct.pack_into("<q", blob, 16, -5)  # negative edge count
        path.write_bytes(bytes(blob))
        with pytest.raises(TapeFormatError, match="corrupt header"):
            read_header(path)

    def test_inconsistent_vertex_bound(self, tmp_path):
        path = self._valid_tape(tmp_path)
        blob = bytearray(path.read_bytes())
        struct.pack_into("<q", blob, 32, 1000)  # n != max_vertex + 1
        path.write_bytes(bytes(blob))
        with pytest.raises(TapeFormatError, match="corrupt header"):
            read_header(path)

    def test_truncated_payload(self, tmp_path):
        path = self._valid_tape(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 8)
        with pytest.raises(TapeFormatError, match="payload size mismatch"):
            MmapEdgeStream(path)

    def test_padded_payload(self, tmp_path):
        path = self._valid_tape(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x00" * 16)
        with pytest.raises(TapeFormatError, match="payload size mismatch"):
            read_header(path)

    def test_checksum_mismatch_caught_by_verify_only(self, tmp_path):
        path = self._valid_tape(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[HEADER_BYTES] ^= 0xFF  # flip a payload byte, sizes stay right
        path.write_bytes(bytes(blob))
        read_header(path)  # structure is intact: open stays O(1)
        with pytest.raises(TapeFormatError, match="checksum mismatch"):
            verify_tape(path)

    def test_truncation_after_open_raises_typed(self, tmp_path):
        path = self._valid_tape(tmp_path)
        stream = MmapEdgeStream(path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 16)
        with pytest.raises(TapeFormatError, match="changed size mid-run"):
            list(stream.iter_chunks())

    def test_tape_format_error_is_stream_read_error(self):
        from repro.errors import StreamReadError

        assert issubclass(TapeFormatError, StreamReadError)


class TestFingerprint:
    def test_stable_across_rewrites(self, tmp_path):
        edges = [(i, i + 1) for i in range(500)]
        path = _tape_from(tmp_path, edges)
        first = tape_fingerprint(path)
        _tape_from(tmp_path, edges)  # rewrite the same content in place
        assert tape_fingerprint(path) == first

    def test_changes_with_content(self, tmp_path):
        a = tape_fingerprint(_tape_from(tmp_path, [(0, 1)], name="a.etape"))
        b = tape_fingerprint(_tape_from(tmp_path, [(0, 2)], name="b.etape"))
        assert a != b

    def test_changes_with_order(self, tmp_path):
        a = tape_fingerprint(_tape_from(tmp_path, [(0, 1), (1, 2)], name="a.etape"))
        b = tape_fingerprint(_tape_from(tmp_path, [(1, 2), (0, 1)], name="b.etape"))
        assert a != b

    def test_stream_caches_fingerprint(self, tmp_path):
        path = _tape_from(tmp_path, [(0, 1)])
        stream = MmapEdgeStream(path)
        assert stream.fingerprint() == tape_fingerprint(path)
        assert stream.fingerprint() is stream.fingerprint()

    def test_empty_tape_has_fingerprint(self, tmp_path):
        assert tape_fingerprint(_tape_from(tmp_path, []))

    def test_large_tape_strided_sampling(self, tmp_path):
        # Past the all-rows threshold the fingerprint samples strided
        # blocks; it must still see a change in the final row.
        import numpy as np

        rows = 70_000  # > _SAMPLE_BLOCKS * _SAMPLE_ROWS
        edges = np.column_stack([np.arange(rows), np.arange(rows) + 1])
        path = _tape_from(tmp_path, edges.tolist(), name="big.etape")
        first = tape_fingerprint(path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01  # perturb the very last payload byte
        path.write_bytes(bytes(blob))
        assert tape_fingerprint(path) != first


class TestAutoDetection:
    def test_open_edge_stream_sniffs_format(self, tmp_path, wheel10):
        txt = tmp_path / "g.txt"
        write_edgelist(wheel10, txt)
        tape = tmp_path / "g.etape"
        write_tape(txt, tape)
        assert isinstance(open_edge_stream(tape), MmapEdgeStream)
        assert isinstance(open_edge_stream(txt), FileEdgeStream)
        assert list(open_edge_stream(tape)) == list(open_edge_stream(txt))

    def test_is_tape_on_text_and_missing(self, tmp_path):
        txt = tmp_path / "g.txt"
        txt.write_text("0 1\n")
        assert not is_tape(txt)
        assert not is_tape(tmp_path / "missing.etape")

    def test_read_edgelist_accepts_tape(self, tmp_path, wheel10):
        from repro.io import read_edgelist

        txt = tmp_path / "g.txt"
        write_edgelist(wheel10, txt)
        tape = tmp_path / "g.etape"
        write_tape(txt, tape)
        assert read_edgelist(tape).edge_list() == wheel10.edge_list()

    def test_extension_is_irrelevant(self, tmp_path):
        # Detection is by magic bytes, not by file name.
        path = _tape_from(tmp_path, [(0, 1)], name="disguised.txt")
        assert is_tape(path)
        assert isinstance(open_edge_stream(path), MmapEdgeStream)


class TestMmapStream:
    def test_zero_copy_chunks_are_views(self, tmp_path):
        import numpy as np

        edges = [(i, i + 1) for i in range(300)]
        path = _tape_from(tmp_path, edges)
        stream = MmapEdgeStream(path)
        chunks = list(stream.iter_chunks(128))
        assert all(isinstance(c, np.memmap) or c.base is not None for c in chunks)
        assert sum(len(c) for c in chunks) == 300

    def test_o1_stats_do_not_touch_payload(self, tmp_path):
        edges = [(i, i + 1) for i in range(100)]
        path = _tape_from(tmp_path, edges)
        stream = MmapEdgeStream(path)
        # Corrupt the payload after open: O(1) stats must not notice.
        blob = bytearray(path.read_bytes())
        blob[HEADER_BYTES] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert stream.stats().num_edges == 100
        assert len(stream) == 100

    def test_replay_consistency(self, tmp_path):
        path = _tape_from(tmp_path, [(0, 1), (1, 2), (0, 2)])
        stream = MmapEdgeStream(path)
        assert list(stream) == list(stream)

    def test_bad_chunk_size_rejected(self, tmp_path):
        stream = MmapEdgeStream(_tape_from(tmp_path, [(0, 1)]))
        with pytest.raises(ValueError, match="chunk_size"):
            next(stream.iter_chunks(0))

    def test_text_twin_must_exist(self, tmp_path):
        path = _tape_from(tmp_path, [(0, 1)])
        with pytest.raises(StreamError, match="text twin not found"):
            MmapEdgeStream(path, text_twin=tmp_path / "gone.txt")

    def test_estimates_match_across_formats(self, tmp_path):
        # The headline invariant, in its smallest form: one graph, one
        # seed, text vs tape, bit-identical estimate.
        import random

        from repro import EstimatorConfig, TriangleCountEstimator

        graph = barabasi_albert_graph(120, 4, random.Random(7))
        txt = tmp_path / "g.txt"
        write_edgelist(graph, txt)
        tape = tmp_path / "g.etape"
        write_tape(txt, tape)

        def run(stream):
            return TriangleCountEstimator(EstimatorConfig(seed=5)).estimate(
                stream, kappa=8
            )

        rt = run(MmapEdgeStream(tape))
        rf = run(FileEdgeStream(txt))
        assert rt.estimate == rf.estimate
        assert rt.passes_total == rf.passes_total
