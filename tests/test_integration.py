"""End-to-end integration tests across the whole stack.

These run the full public API (driver + streaming assigner + guessing loop)
on the workload suite and on structurally adversarial inputs, checking the
paper's headline promises end to end.
"""

from __future__ import annotations

import random

import pytest

from repro import EstimatorConfig, ExactStreamingCounter, TriangleCountEstimator
from repro.generators import standard_suite, workload_by_name
from repro.graph import count_triangles
from repro.streams import FileEdgeStream, InMemoryEdgeStream
from repro.streams.transforms import adversarial_heavy_edge_last_order, shuffled


def estimate_workload(workload, seed=0, epsilon=0.3, repetitions=5):
    graph = workload.instantiate(seed=seed)
    t = count_triangles(graph)
    stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(seed)))
    config = EstimatorConfig(epsilon=epsilon, repetitions=repetitions, seed=seed + 1)
    result = TriangleCountEstimator(config).estimate(stream, kappa=workload.kappa_bound)
    return graph, t, result


class TestWorkloadSuite:
    @pytest.mark.parametrize(
        "name", ["wheel", "book", "friendship", "triangulated-grid", "ba", "planted"]
    )
    def test_tiny_suite_accuracy(self, name):
        workload = workload_by_name(name, scale="tiny")
        graph, t, result = estimate_workload(workload, seed=3)
        assert t > 0
        assert abs(result.estimate - t) / t < 0.45, (name, result.estimate, t)

    @pytest.mark.parametrize("name", ["watts-strogatz", "chung-lu"])
    def test_random_suite_accuracy(self, name):
        workload = workload_by_name(name, scale="tiny")
        graph, t, result = estimate_workload(workload, seed=2)
        if t == 0:
            assert result.estimate == 0.0
        else:
            assert abs(result.estimate - t) / t < 0.6, (name, result.estimate, t)

    def test_sparse_control(self):
        # er-sparse has few triangles; the estimate should at least land in
        # the right order of magnitude or correctly report near-zero.
        workload = workload_by_name("er-sparse", scale="tiny")
        graph, t, result = estimate_workload(workload, seed=1)
        if t >= 10:
            assert result.estimate == pytest.approx(t, rel=1.5)


class TestStreamOrders:
    def test_estimate_insensitive_to_order(self):
        workload = workload_by_name("wheel", scale="tiny")
        graph = workload.instantiate(0)
        t = count_triangles(graph)
        estimates = []
        for order_seed in range(3):
            stream = InMemoryEdgeStream.from_graph(
                graph, shuffled(graph, random.Random(order_seed))
            )
            cfg = EstimatorConfig(seed=9, repetitions=3)
            estimates.append(
                TriangleCountEstimator(cfg).estimate(stream, kappa=3).estimate
            )
        for e in estimates:
            assert abs(e - t) / t < 0.4

    def test_adversarial_order(self):
        workload = workload_by_name("book", scale="tiny")
        graph = workload.instantiate(0)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, adversarial_heavy_edge_last_order(graph))
        cfg = EstimatorConfig(seed=4, repetitions=5)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=2)
        assert abs(result.estimate - t) / t < 0.45


class TestFileStreamEndToEnd:
    def test_estimate_from_file(self, tmp_path):
        from repro.io import write_edgelist

        workload = workload_by_name("wheel", scale="tiny")
        graph = workload.instantiate(0)
        path = tmp_path / "wheel.txt"
        write_edgelist(graph, path)
        stream = FileEdgeStream(path)
        t = count_triangles(graph)
        cfg = EstimatorConfig(seed=2, repetitions=3)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
        assert abs(result.estimate - t) / t < 0.4

    def test_exact_counter_from_file(self, tmp_path):
        from repro.io import write_edgelist

        graph = workload_by_name("triangulated-grid", scale="tiny").instantiate(0)
        path = tmp_path / "grid.txt"
        write_edgelist(graph, path)
        assert ExactStreamingCounter().count(FileEdgeStream(path)).triangles == count_triangles(
            graph
        )


class TestSpaceScaling:
    def test_sample_sizes_track_m_kappa_over_t(self):
        # Fixing the family and quartering T (by construction) should
        # (nearly) quadruple the provisioned sample sizes r and s of the
        # accepted round - the mechanism behind the m*kappa/T bound.  (Total
        # measured words also include the batched-assignment bookkeeping,
        # whose tracked-vertex count shrinks as T shrinks, so the clean
        # scaling statement is about the provisioned sizes; benchmark E2
        # reports both.)
        from repro.generators import planted_triangles_graph

        plans = {}
        for triangles in (100, 400):
            graph = planted_triangles_graph(base_edges=400, triangles=triangles)
            t = count_triangles(graph)
            stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(0)))
            cfg = EstimatorConfig(seed=1, repetitions=3, t_hint=float(t))
            result = TriangleCountEstimator(cfg).estimate(stream, kappa=3)
            plans[triangles] = result.final_plan
        # m differs between the two instances (2 extra edges per planted
        # triangle), so compare r normalized by m.
        r_per_edge_100 = plans[100].r / plans[100].num_edges
        r_per_edge_400 = plans[400].r / plans[400].num_edges
        assert r_per_edge_100 == pytest.approx(4 * r_per_edge_400, rel=0.05)
        s_per_edge_100 = plans[100].s / plans[100].num_edges
        s_per_edge_400 = plans[400].s / plans[400].num_edges
        assert s_per_edge_100 == pytest.approx(4 * s_per_edge_400, rel=0.05)
