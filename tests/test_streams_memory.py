"""Tests for repro.streams.memory.InMemoryEdgeStream."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, StreamError
from repro.generators import wheel_graph
from repro.streams import InMemoryEdgeStream


class TestConstruction:
    def test_validates_and_canonicalizes(self):
        s = InMemoryEdgeStream([(3, 1), (0, 2)])
        assert list(s) == [(1, 3), (0, 2)]

    def test_rejects_duplicates(self):
        with pytest.raises(GraphError, match="duplicate"):
            InMemoryEdgeStream([(1, 2), (2, 1)])

    def test_rejects_self_loops(self):
        with pytest.raises(GraphError, match="self-loop"):
            InMemoryEdgeStream([(4, 4)])

    def test_validate_false_trusts_input(self):
        s = InMemoryEdgeStream([(1, 3)], validate=False)
        assert list(s) == [(1, 3)]

    def test_len(self):
        assert len(InMemoryEdgeStream([(0, 1), (1, 2)])) == 2

    def test_empty_stream(self):
        s = InMemoryEdgeStream([])
        assert len(s) == 0
        assert list(s) == []


class TestReplay:
    def test_multiple_passes_identical(self):
        s = InMemoryEdgeStream([(0, 1), (1, 2), (0, 2)])
        assert list(s) == list(s) == list(s)

    def test_stats(self):
        s = InMemoryEdgeStream([(0, 5), (2, 3)])
        stats = s.stats()
        assert stats.num_edges == 2
        assert stats.max_vertex_id == 5
        assert stats.num_vertices_upper == 6


class TestRandomAccessGuard:
    def test_edge_at_in_range(self):
        s = InMemoryEdgeStream([(0, 1), (1, 2)])
        assert s.edge_at(1) == (1, 2)

    @pytest.mark.parametrize("index", [-1, 2, 100])
    def test_edge_at_out_of_range(self, index):
        s = InMemoryEdgeStream([(0, 1), (1, 2)])
        with pytest.raises(StreamError, match="out of range"):
            s.edge_at(index)


class TestFromGraph:
    def test_default_sorted_order(self, wheel10):
        s = InMemoryEdgeStream.from_graph(wheel10)
        assert list(s) == wheel10.edge_list()

    def test_explicit_order(self, triangle):
        order = [(1, 2), (0, 2), (0, 1)]
        s = InMemoryEdgeStream.from_graph(triangle, order)
        assert list(s) == order

    def test_rejects_non_permutation(self, triangle):
        with pytest.raises(StreamError, match="permutation"):
            InMemoryEdgeStream.from_graph(triangle, [(0, 1), (0, 2)])

    def test_rejects_foreign_edges(self, triangle):
        with pytest.raises(StreamError, match="permutation"):
            InMemoryEdgeStream.from_graph(triangle, [(0, 1), (0, 2), (5, 6)])
