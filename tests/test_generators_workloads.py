"""Tests for the named workload suite."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.generators import standard_suite, workload_by_name
from repro.graph import count_triangles, degeneracy


class TestSuite:
    def test_scales(self):
        assert {w.name for w in standard_suite("tiny")} == {
            w.name for w in standard_suite("small")
        }

    def test_unknown_scale(self):
        with pytest.raises(ParameterError, match="scale"):
            standard_suite("galactic")

    def test_lookup_by_name(self):
        w = workload_by_name("wheel", scale="tiny")
        assert w.name == "wheel"

    def test_lookup_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown workload"):
            workload_by_name("mystery")

    def test_instantiation_deterministic(self):
        w = workload_by_name("ba", scale="tiny")
        assert w.instantiate(seed=3) == w.instantiate(seed=3)

    def test_kappa_bounds_are_valid_promises(self):
        # Every workload's promised kappa bound must dominate the true
        # degeneracy - the estimator's correctness rests on this.
        for w in standard_suite("tiny"):
            g = w.instantiate(seed=0)
            assert degeneracy(g) <= w.kappa_bound, w.name

    def test_kappa_bounds_hold_across_seeds(self):
        for w in standard_suite("tiny"):
            for seed in (1, 2):
                assert degeneracy(w.instantiate(seed)) <= w.kappa_bound, (w.name, seed)

    def test_triangle_rich_workloads(self):
        # All suite entries except the sparse-control ones are triangle-rich.
        for w in standard_suite("tiny"):
            g = w.instantiate(seed=0)
            if w.name in ("er-sparse",):
                continue
            assert count_triangles(g) > 0, w.name

    def test_descriptions_present(self):
        for w in standard_suite("tiny"):
            assert w.description
