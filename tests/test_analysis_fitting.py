"""Tests for the power-law fitting used by the scaling experiments."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.fitting import fit_power_law
from repro.errors import ParameterError


class TestFitPowerLaw:
    def test_exact_linear(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        fit = fit_power_law(xs, [3 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_sqrt(self):
        xs = [1.0, 4.0, 16.0, 64.0]
        fit = fit_power_law(xs, [5 * math.sqrt(x) for x in xs])
        assert fit.exponent == pytest.approx(0.5)

    def test_constant_series(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [7.0, 7.0, 7.0])
        assert fit.exponent == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_series_recovers_exponent(self):
        rng = random.Random(0)
        xs = [2.0 ** i for i in range(1, 12)]
        ys = [4 * x ** 1.5 * (1 + 0.05 * (rng.random() - 0.5)) for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=0.05)
        assert fit.r_squared > 0.99

    def test_predict(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        assert fit.predict(8.0) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ParameterError):
            fit_power_law([1.0, 2.0], [1.0])
        with pytest.raises(ParameterError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ParameterError):
            fit_power_law([3.0, 3.0], [1.0, 2.0])
