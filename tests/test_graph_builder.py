"""Tests for repro.graph.builder.GraphBuilder policies."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder


class TestPolicies:
    def test_invalid_duplicate_policy(self):
        with pytest.raises(GraphError):
            GraphBuilder(on_duplicate="explode")

    def test_invalid_self_loop_policy(self):
        with pytest.raises(GraphError):
            GraphBuilder(on_self_loop="explode")

    def test_strict_duplicate_raises(self):
        b = GraphBuilder()
        b.add_edge(1, 2)
        with pytest.raises(GraphError, match="duplicate"):
            b.add_edge(2, 1)

    def test_ignore_duplicate_counts(self):
        b = GraphBuilder(on_duplicate="ignore")
        b.add_edge(1, 2).add_edge(2, 1).add_edge(1, 2)
        assert b.num_edges == 1
        assert b.dropped_duplicates == 2

    def test_strict_self_loop_raises(self):
        with pytest.raises(GraphError, match="self-loop"):
            GraphBuilder().add_edge(3, 3)

    def test_ignore_self_loop_counts(self):
        b = GraphBuilder(on_self_loop="ignore")
        b.add_edge(3, 3)
        assert b.num_edges == 0
        assert b.dropped_self_loops == 1


class TestBuild:
    def test_build_produces_graph(self):
        g = GraphBuilder().add_edges([(0, 1), (1, 2)]).build()
        assert g.num_edges == 2
        assert g.has_edge(0, 1)

    def test_isolated_vertices_preserved(self):
        g = GraphBuilder().add_vertex(7).add_edge(0, 1).build()
        assert g.has_vertex(7)
        assert g.degree(7) == 0

    def test_add_vertex_rejects_negative(self):
        with pytest.raises(GraphError, match="negative"):
            GraphBuilder().add_vertex(-4)

    def test_builder_reusable_after_build(self):
        b = GraphBuilder().add_edge(0, 1)
        g1 = b.build()
        b.add_edge(1, 2)
        g2 = b.build()
        assert g1.num_edges == 1
        assert g2.num_edges == 2

    def test_build_deterministic(self):
        edges = [(4, 2), (0, 9), (3, 1)]
        g1 = GraphBuilder().add_edges(edges).build()
        g2 = GraphBuilder().add_edges(reversed(edges)).build()
        assert g1 == g2
