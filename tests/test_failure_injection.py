"""Failure injection: the guard rails must fail loudly, not silently.

The streaming model's constraints (pass budgets, space budgets, replay
consistency) are enforced by the infrastructure; these tests inject
violations and assert the failure is an exception at the right layer, with
state left coherent.
"""

from __future__ import annotations

import random
from typing import Iterator

import pytest

from repro import EstimatorConfig, TriangleCountEstimator
from repro.core.params import ParameterPlan
from repro.core.estimator import run_single_estimate
from repro.errors import PassBudgetExceeded, SpaceBudgetExceeded, StreamError
from repro.generators import wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream, PassScheduler, SpaceMeter
from repro.streams.base import EdgeStream
from repro.types import Edge


class FlakyStream(EdgeStream):
    """A stream that dies mid-pass after ``fail_after`` edges."""

    def __init__(self, edges, fail_after: int) -> None:
        self._edges = list(edges)
        self._fail_after = fail_after

    def __iter__(self) -> Iterator[Edge]:
        for i, e in enumerate(self._edges):
            if i >= self._fail_after:
                raise IOError("injected stream failure")
            yield e

    def __len__(self) -> int:
        return len(self._edges)


class MutatingStream(EdgeStream):
    """A stream whose order changes between passes (model violation)."""

    def __init__(self, edges) -> None:
        self._edges = list(edges)
        self._passes = 0

    def __iter__(self) -> Iterator[Edge]:
        self._passes += 1
        order = list(self._edges)
        random.Random(self._passes).shuffle(order)
        return iter(order)

    def __len__(self) -> int:
        return len(self._edges)


class TestStreamFailures:
    def test_midpass_ioerror_propagates(self):
        graph = wheel_graph(40)
        stream = FlakyStream(graph.edge_list(), fail_after=10)
        plan = ParameterPlan.build(40, graph.num_edges, 3, 39.0, 0.3)
        with pytest.raises(IOError, match="injected"):
            run_single_estimate(stream, plan, random.Random(0))

    def test_scheduler_recovers_after_failed_pass(self):
        graph = wheel_graph(20)
        edges = graph.edge_list()
        flaky = FlakyStream(edges, fail_after=5)
        scheduler = PassScheduler(flaky)
        with pytest.raises(IOError):
            list(scheduler.new_pass())
        # The failed pass counted and closed; a scheduler over a healthy
        # stream object can continue (same scheduler, swapped behaviour is
        # not possible - so verify pass accounting stayed coherent).
        assert scheduler.passes_used == 1

    def test_mutating_stream_does_not_crash_estimator(self):
        # A stream violating replay consistency produces *wrong numbers*,
        # not crashes - the model assumption is external.  The estimator
        # must still terminate and return a finite value.
        graph = wheel_graph(100)
        stream = MutatingStream(graph.edge_list())
        plan = ParameterPlan.build(100, graph.num_edges, 3, 99.0, 0.3)
        result = run_single_estimate(stream, plan, random.Random(1))
        assert result.estimate >= 0.0
        assert result.passes_used <= 6


class TestBudgetViolations:
    def test_space_budget_aborts_during_pass1(self):
        graph = wheel_graph(200)
        stream = InMemoryEdgeStream.from_graph(graph)
        plan = ParameterPlan.build(200, graph.num_edges, 3, 10.0, 0.3)  # big r
        meter = SpaceMeter(budget_words=50)
        with pytest.raises(SpaceBudgetExceeded):
            run_single_estimate(stream, plan, random.Random(0), meter=meter)

    def test_space_budget_driver_level(self):
        graph = wheel_graph(100)
        stream = InMemoryEdgeStream.from_graph(graph)
        cfg = EstimatorConfig(seed=0, repetitions=1, space_budget_words=20)
        with pytest.raises(SpaceBudgetExceeded):
            TriangleCountEstimator(cfg).estimate(stream, kappa=3)

    def test_pass_budget_violation_detected(self):
        graph = wheel_graph(30)
        stream = InMemoryEdgeStream.from_graph(graph)
        scheduler = PassScheduler(stream, max_passes=1)
        list(scheduler.new_pass())
        with pytest.raises(PassBudgetExceeded):
            scheduler.new_pass()

    def test_meter_state_coherent_after_abort(self):
        meter = SpaceMeter(budget_words=10)
        meter.allocate(8, "a")
        with pytest.raises(SpaceBudgetExceeded):
            meter.allocate(5, "b")
        # The failed allocation was still recorded (abort semantics: the
        # algorithm stops; the meter reports what it observed).
        assert meter.current_words == 13
        assert meter.peak_words == 13


class TestInputValidationAtBoundaries:
    def test_stream_graph_mismatch(self):
        graph = wheel_graph(30)
        other = wheel_graph(40)
        stream = InMemoryEdgeStream.from_graph(other)
        plan = ParameterPlan.build(30, graph.num_edges, 3, 29.0, 0.3)
        with pytest.raises(ValueError, match="plan was built"):
            run_single_estimate(stream, plan, random.Random(0))

    def test_order_not_permutation(self):
        graph = wheel_graph(10)
        with pytest.raises(StreamError):
            InMemoryEdgeStream.from_graph(graph, graph.edge_list()[:-1])

    def test_estimator_survives_minimum_graph(self):
        # Single triangle: the smallest instance with T > 0.
        stream = InMemoryEdgeStream([(0, 1), (1, 2), (0, 2)])
        cfg = EstimatorConfig(seed=1, repetitions=3)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=2)
        assert result.estimate == pytest.approx(1.0, rel=1.0)

    def test_estimator_single_edge(self):
        stream = InMemoryEdgeStream([(0, 1)])
        cfg = EstimatorConfig(seed=1, repetitions=2)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=1)
        assert result.estimate == 0.0
