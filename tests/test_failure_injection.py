"""Failure injection: the guard rails must fail loudly, not silently.

The streaming model's constraints (pass budgets, space budgets, replay
consistency) are enforced by the infrastructure; these tests inject
violations and assert the failure is an exception at the right layer, with
state left coherent.

Library-level failures (mid-sweep stream faults, pool failures) are
injected through the deterministic :mod:`repro.core.faults` harness;
``NthPassFailingStream`` remains as the one *ad-hoc* failure stream
because it models an external user stream raising bare ``IOError`` -
exactly the class of exception the harness cannot type for us.
"""

from __future__ import annotations

import os
import random
from typing import Iterator

import pytest

import repro.core.driver as driver_module
from repro import EstimatorConfig, TriangleCountEstimator
from repro.core import faults
from repro.core.params import ParameterPlan
from repro.core.estimator import run_single_estimate
from repro.errors import (
    PassBudgetExceeded,
    SpaceBudgetExceeded,
    StreamError,
    StreamReadError,
)
from repro.generators import barabasi_albert_graph, wheel_graph
from repro.graph import count_triangles
from repro.rng import make_rng, spawn
from repro.streams import InMemoryEdgeStream, PassScheduler, SpaceMeter
from repro.streams.base import EdgeStream
from repro.types import Edge


class NthPassFailingStream(EdgeStream):
    """Delegates to a fixed tape; every pass from ``fail_pass`` on dies mid-way."""

    def __init__(self, edges, fail_pass: int, fail_after: int = 10) -> None:
        self._edges = list(edges)
        self._fail_pass = fail_pass
        self._fail_after = fail_after
        self._passes = 0

    def __iter__(self) -> Iterator[Edge]:
        self._passes += 1
        if self._passes >= self._fail_pass:
            return self._failing_pass()
        return iter(self._edges)

    def _failing_pass(self) -> Iterator[Edge]:
        for i, e in enumerate(self._edges):
            if i >= self._fail_after:
                raise IOError("injected stream failure")
            yield e

    def __len__(self) -> int:
        return len(self._edges)


class MutatingStream(EdgeStream):
    """A stream whose order changes between passes (model violation)."""

    def __init__(self, edges) -> None:
        self._edges = list(edges)
        self._passes = 0

    def __iter__(self) -> Iterator[Edge]:
        self._passes += 1
        order = list(self._edges)
        random.Random(self._passes).shuffle(order)
        return iter(order)

    def __len__(self) -> int:
        return len(self._edges)


class TestStreamFailures:
    def test_midsweep_fault_propagates(self):
        # A mid-sweep stream fault injected by the harness reaches the
        # single-run estimator as a typed StreamReadError (no recovery
        # machinery below the driver - the failure must be loud).
        graph = wheel_graph(40)
        stream = InMemoryEdgeStream.from_graph(graph)
        plan = ParameterPlan.build(40, graph.num_edges, 3, 39.0, 0.3)
        with faults.fault_scope("sweep.mid_stage@0"):
            with pytest.raises(StreamReadError, match="injected"):
                run_single_estimate(stream, plan, random.Random(0))

    def test_scheduler_recovers_after_failed_pass(self):
        graph = wheel_graph(20)
        stream = InMemoryEdgeStream.from_graph(graph)
        with faults.fault_scope("sweep.mid_stage@0"):
            scheduler = PassScheduler(stream)
            with pytest.raises(StreamReadError, match="injected"):
                list(scheduler.new_pass())
            # The failed pass counted and closed; the injection was a
            # one-shot event, so the same scheduler serves the next pass
            # cleanly with its accounting coherent.
            assert scheduler.passes_used == 1
            assert len(list(scheduler.new_pass())) == len(stream)
            assert scheduler.passes_used == 2

    def test_mutating_stream_does_not_crash_estimator(self):
        # A stream violating replay consistency produces *wrong numbers*,
        # not crashes - the model assumption is external.  The estimator
        # must still terminate and return a finite value.
        graph = wheel_graph(100)
        stream = MutatingStream(graph.edge_list())
        plan = ParameterPlan.build(100, graph.num_edges, 3, 99.0, 0.3)
        result = run_single_estimate(stream, plan, random.Random(1))
        assert result.estimate >= 0.0
        assert result.passes_used <= 6


class TestBudgetViolations:
    def test_space_budget_aborts_during_pass1(self):
        graph = wheel_graph(200)
        stream = InMemoryEdgeStream.from_graph(graph)
        plan = ParameterPlan.build(200, graph.num_edges, 3, 10.0, 0.3)  # big r
        meter = SpaceMeter(budget_words=50)
        with pytest.raises(SpaceBudgetExceeded):
            run_single_estimate(stream, plan, random.Random(0), meter=meter)

    def test_space_budget_driver_level(self):
        graph = wheel_graph(100)
        stream = InMemoryEdgeStream.from_graph(graph)
        cfg = EstimatorConfig(seed=0, repetitions=1, space_budget_words=20)
        with pytest.raises(SpaceBudgetExceeded):
            TriangleCountEstimator(cfg).estimate(stream, kappa=3)

    def test_pass_budget_violation_detected(self):
        graph = wheel_graph(30)
        stream = InMemoryEdgeStream.from_graph(graph)
        scheduler = PassScheduler(stream, max_passes=1)
        list(scheduler.new_pass())
        with pytest.raises(PassBudgetExceeded):
            scheduler.new_pass()

    def test_meter_state_coherent_after_abort(self):
        meter = SpaceMeter(budget_words=10)
        meter.allocate(8, "a")
        with pytest.raises(SpaceBudgetExceeded):
            meter.allocate(5, "b")
        # The failed allocation was still recorded (abort semantics: the
        # algorithm stops; the meter reports what it observed).
        assert meter.current_words == 13
        assert meter.peak_words == 13


class TestInputValidationAtBoundaries:
    def test_stream_graph_mismatch(self):
        graph = wheel_graph(30)
        other = wheel_graph(40)
        stream = InMemoryEdgeStream.from_graph(other)
        plan = ParameterPlan.build(30, graph.num_edges, 3, 29.0, 0.3)
        with pytest.raises(ValueError, match="plan was built"):
            run_single_estimate(stream, plan, random.Random(0))

    def test_order_not_permutation(self):
        graph = wheel_graph(10)
        with pytest.raises(StreamError):
            InMemoryEdgeStream.from_graph(graph, graph.edge_list()[:-1])

    def test_estimator_survives_minimum_graph(self):
        # Single triangle: the smallest instance with T > 0.
        stream = InMemoryEdgeStream([(0, 1), (1, 2), (0, 2)])
        cfg = EstimatorConfig(seed=1, repetitions=3)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=2)
        assert result.estimate == pytest.approx(1.0, rel=1.0)

    def test_estimator_single_edge(self):
        stream = InMemoryEdgeStream([(0, 1)])
        cfg = EstimatorConfig(seed=1, repetitions=2)
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=1)
        assert result.estimate == 0.0


class TestSpeculativeCleanupPaths:
    """The speculative driver's cleanup contracts under injected failures.

    A shared sweep dying mid-stage must not leave speculative residue
    behind: the root generator's consumption has to match the sequential
    trajectory (pre-drawn rounds rewound), and a sharded sweep's per-task
    shared-memory spools have to be unlinked even when the failure strikes
    before their task's partial was absorbed.
    """

    @pytest.mark.parametrize("depth", [2, 3])
    def test_sweep_failure_rewinds_speculative_rng_spawns(self, monkeypatch, depth):
        # The stream survives the stats pass, then dies during every later
        # sweep - after the speculative rounds' generators were already
        # spawned from the root.  The recovery layer retries the round
        # (rewinding the root each time) and degrades speculation to the
        # sequential loop before giving up; the persistent failure then
        # propagates with the root's consumption matching the sequential
        # trajectory up to the failure.
        graph = barabasi_albert_graph(200, 4, random.Random(3))
        stream = NthPassFailingStream(graph.edge_list(), fail_pass=2)
        captured = []
        real_make_rng = driver_module.make_rng

        def recording_make_rng(seed):
            rng = real_make_rng(seed)
            captured.append(rng)
            return rng

        monkeypatch.setattr(driver_module, "make_rng", recording_make_rng)
        cfg = EstimatorConfig(
            seed=5,
            repetitions=3,
            engine_mode="python",
            speculate=True,
            speculate_depth=depth,
        )
        with pytest.raises(IOError, match="injected stream failure"):
            TriangleCountEstimator(cfg).estimate(stream, kappa=4)
        # The sequential driver would have drawn only round 0's children
        # before the failing sweep; every speculative spawn must have been
        # rewound when the window aborted.
        expected = make_rng(5)
        for rep in range(3):
            spawn(expected, f"round0/rep{rep}")
        assert captured, "instrumentation never saw the root generator"
        assert captured[-1].getstate() == expected.getstate()

    def test_sharded_sweep_failure_releases_spooled_segments(self, tmp_path, monkeypatch):
        numpy = pytest.importorskip("numpy")
        from repro.core import executor
        from repro.core.kernels import DegreeCountPlan
        from repro.streams import shm
        from repro.streams.file import FileEdgeStream

        if not shm.shm_enabled():
            pytest.skip("shared-memory transport disabled on this platform")
        path = tmp_path / "tape.edges"
        path.write_text("".join(f"{i} {i + 1}\n" for i in range(2000)), encoding="utf-8")
        stream = FileEdgeStream(path)
        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)

        created = []
        real_new_segment = shm.new_segment_from_blocks

        def recording_new_segment(blocks):
            segment = real_new_segment(blocks)
            if segment is not None:
                created.append(segment)
            return segment

        monkeypatch.setattr(shm, "new_segment_from_blocks", recording_new_segment)
        pool = executor._get_pool(2)
        real_submit = pool.submit
        calls = {"count": 0}

        def failing_submit(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 3:
                raise RuntimeError("injected pool failure")
            return real_submit(*args, **kwargs)

        monkeypatch.setattr(pool, "submit", failing_submit)
        scheduler = PassScheduler(stream)
        tracked = numpy.arange(100, dtype=numpy.int64)
        with pytest.raises(RuntimeError, match="injected pool failure") as excinfo:
            executor.run_plan(
                scheduler, DegreeCountPlan(tracked), chunk_size=64, workers=2
            )
        # While the exception (and therefore every in-flight frame) is
        # still alive, no owned segment may remain: the error path has to
        # unlink explicitly, not lean on the GC safety net.
        assert created, "failure injection never spooled a segment"
        assert all(not segment._finalizer.alive for segment in created), (
            "spooled segments survived the failed sweep"
        )
        assert not shm.live_segment_names()
        if os.path.isdir("/dev/shm"):
            for segment in created:
                assert not os.path.exists(f"/dev/shm/{segment.name}"), (
                    f"stale shared-memory entry {segment.name}"
                )
        del excinfo
