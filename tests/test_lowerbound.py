"""Tests for the Theorem 6.3 construction and the distinguishing harness."""

from __future__ import annotations

import random

import pytest

from repro.errors import ParameterError
from repro.graph import count_triangles, degeneracy
from repro.lowerbound import (
    build_reduction_graph,
    instance_parameters,
    run_distinguishing_experiment,
    sample_disjointness,
)
from repro.lowerbound.reduction import expected_shape, reduction_edges


class TestDisjointness:
    def test_promise_weights(self):
        inst = sample_disjointness(12, 4, intersecting=False, rng=random.Random(0))
        assert inst.ones == 4
        assert len(inst.alice) == len(inst.bob) == 4

    def test_disjoint_case(self):
        inst = sample_disjointness(12, 4, intersecting=False, rng=random.Random(0))
        assert inst.disjoint

    def test_intersecting_case(self):
        inst = sample_disjointness(12, 4, intersecting=True, rng=random.Random(0))
        assert not inst.disjoint

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ParameterError):
            sample_disjointness(10, 0, False, rng)
        with pytest.raises(ParameterError):
            sample_disjointness(10, 11, True, rng)
        with pytest.raises(ParameterError):
            sample_disjointness(10, 6, False, rng)  # 2*6 > 10

    def test_indices_in_universe(self):
        inst = sample_disjointness(9, 3, intersecting=True, rng=random.Random(1))
        assert all(0 <= i < 9 for i in inst.alice | inst.bob)


class TestInstanceParameters:
    def test_p_q_formulas(self):
        inst = instance_parameters(kappa=4, exponent_r=3, universe=9)
        assert inst.p == 4
        assert inst.q == 4
        assert inst.planted_triangles == 64  # kappa^r

    def test_r2_gives_unit_blocks(self):
        inst = instance_parameters(kappa=5, exponent_r=2, universe=9)
        assert inst.q == 1
        assert inst.planted_triangles == 25

    def test_num_vertices(self):
        inst = instance_parameters(kappa=3, exponent_r=3, universe=6)
        assert inst.num_vertices == 2 * 3 + 6 * 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            instance_parameters(0, 3, 9)
        with pytest.raises(ParameterError):
            instance_parameters(3, 1, 9)
        with pytest.raises(ParameterError):
            instance_parameters(3, 3, 2)

    def test_block_ranges_disjoint(self):
        inst = instance_parameters(kappa=3, exponent_r=3, universe=5)
        seen = set()
        for i in range(5):
            block = set(inst.block_range(i))
            assert not (block & seen)
            seen |= block
        assert not (seen & set(inst.side_a))
        assert not (seen & set(inst.side_b))

    def test_block_range_validation(self):
        inst = instance_parameters(kappa=3, exponent_r=3, universe=5)
        with pytest.raises(ParameterError):
            inst.block_range(5)


class TestReductionGraph:
    @pytest.fixture
    def inst(self):
        return instance_parameters(kappa=3, exponent_r=3, universe=9)

    def test_yes_case_triangle_free(self, inst):
        disj = sample_disjointness(9, 3, intersecting=False, rng=random.Random(2))
        g = build_reduction_graph(inst, disj)
        assert count_triangles(g) == 0

    def test_no_case_triangle_count(self, inst):
        disj = sample_disjointness(9, 3, intersecting=True, rng=random.Random(2))
        g = build_reduction_graph(inst, disj)
        intersections = len(disj.alice & disj.bob)
        assert count_triangles(g) == intersections * inst.planted_triangles

    def test_yes_case_degeneracy_is_p(self, inst):
        disj = sample_disjointness(9, 3, intersecting=False, rng=random.Random(2))
        assert degeneracy(build_reduction_graph(inst, disj)) == inst.p

    def test_no_case_degeneracy_at_most_2p(self, inst):
        disj = sample_disjointness(9, 3, intersecting=True, rng=random.Random(2))
        kappa = degeneracy(build_reduction_graph(inst, disj))
        assert inst.p <= kappa <= 2 * inst.p

    def test_edge_count_formula(self, inst):
        for intersecting in (False, True):
            disj = sample_disjointness(9, 3, intersecting=intersecting, rng=random.Random(4))
            g = build_reduction_graph(inst, disj)
            m_expected, t_floor = expected_shape(inst, disj)
            assert g.num_edges == m_expected
            assert count_triangles(g) >= t_floor

    def test_vertex_set_identical_across_cases(self, inst):
        rng = random.Random(5)
        g_yes = build_reduction_graph(inst, sample_disjointness(9, 3, False, rng))
        g_no = build_reduction_graph(inst, sample_disjointness(9, 3, True, rng))
        assert g_yes.num_vertices == g_no.num_vertices == inst.num_vertices

    def test_universe_mismatch_rejected(self, inst):
        disj = sample_disjointness(12, 4, intersecting=False, rng=random.Random(0))
        with pytest.raises(ParameterError, match="universe"):
            list(reduction_edges(inst, disj))


class TestDistinguishingExperiment:
    def test_full_budget_separates(self):
        inst = instance_parameters(kappa=3, exponent_r=3, universe=9)
        outcome = run_distinguishing_experiment(inst, budget_factor=1.0, trials=3, seed=5)
        assert outcome.success_rate == 1.0
        assert all(e == 0.0 for e in outcome.yes_estimates)

    def test_validation(self):
        inst = instance_parameters(kappa=3, exponent_r=3, universe=9)
        with pytest.raises(ParameterError):
            run_distinguishing_experiment(inst, budget_factor=0.0, trials=2)
        with pytest.raises(ParameterError):
            run_distinguishing_experiment(inst, budget_factor=1.0, trials=0)

    def test_outcome_bookkeeping(self):
        inst = instance_parameters(kappa=3, exponent_r=3, universe=9)
        outcome = run_distinguishing_experiment(inst, budget_factor=0.5, trials=2, seed=1)
        assert outcome.trials == 2
        assert len(outcome.yes_estimates) == 2
        assert len(outcome.no_estimates) == 2
        assert 0.0 <= outcome.success_rate <= 1.0
        assert outcome.space_words_peak > 0
