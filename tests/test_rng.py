"""Tests for repro.rng: deterministic spawning."""

from __future__ import annotations

from repro.rng import make_rng, spawn, spawn_many


class TestMakeRng:
    def test_same_seed_same_sequence(self):
        a, b = make_rng(7), make_rng(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestSpawn:
    def test_reproducible_from_parent_seed(self):
        child1 = spawn(make_rng(3), "alpha")
        child2 = spawn(make_rng(3), "alpha")
        assert [child1.random() for _ in range(4)] == [child2.random() for _ in range(4)]

    def test_labels_give_independent_children(self):
        parent = make_rng(3)
        a = spawn(parent, "alpha")
        b = spawn(parent, "beta")
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_spawn_advances_parent(self):
        # Spawning twice with the same label from the same parent must give
        # different children (fresh parent entropy each time).
        parent = make_rng(3)
        a = spawn(parent, "x")
        b = spawn(parent, "x")
        assert a.random() != b.random()


class TestSpawnMany:
    def test_count_and_distinctness(self):
        children = list(spawn_many(make_rng(0), "runs", 10))
        assert len(children) == 10
        first_draws = [c.random() for c in children]
        assert len(set(first_draws)) == 10
