"""Tests for repro.sampling.weighted.WeightedReservoir (Chao's scheme)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.sampling import WeightedReservoir
from repro.streams import SpaceMeter


class TestBasics:
    def test_empty_returns_none(self):
        assert WeightedReservoir(random.Random(0)).sample() is None

    def test_negative_weight_rejected(self):
        r = WeightedReservoir(random.Random(0))
        with pytest.raises(ValueError):
            r.offer("a", -1.0)

    def test_zero_weight_never_sampled(self):
        r = WeightedReservoir(random.Random(0))
        r.offer("heavy", 1.0)
        for _ in range(50):
            r.offer("zero", 0.0)
        assert r.sample() == "heavy"

    def test_all_zero_weights_returns_none(self):
        r = WeightedReservoir(random.Random(0))
        r.offer("a", 0.0)
        assert r.sample() is None

    def test_total_weight_accumulates(self):
        r = WeightedReservoir(random.Random(0))
        r.offer("a", 2.0)
        r.offer("b", 3.0)
        assert r.total_weight == 5.0
        assert r.offers == 2

    def test_meter_charged_once(self):
        meter = SpaceMeter()
        r = WeightedReservoir(random.Random(0), meter=meter, words_per_item=2)
        r.offer("a", 1.0)
        r.offer("b", 1.0)
        assert meter.peak_words == 2


class TestProportionality:
    def test_sampling_proportional_to_weight(self):
        # Items with weights 1..4: inclusion prob must approach w / 10.
        weights = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        rng = random.Random(99)
        hits = Counter()
        trials = 8000
        for _ in range(trials):
            r = WeightedReservoir(rng)
            for item, w in weights.items():
                r.offer(item, w)
            hits[r.sample()] += 1
        for item, w in weights.items():
            assert abs(hits[item] / trials - w / 10.0) < 0.03, item

    def test_proportionality_invariant_under_order(self):
        # Offering heavy-first vs heavy-last must not bias the sample.
        rng = random.Random(3)
        trials = 6000
        for order in (["h", "l"], ["l", "h"]):
            hits = Counter()
            for _ in range(trials):
                r = WeightedReservoir(rng)
                for item in order:
                    r.offer(item, 9.0 if item == "h" else 1.0)
                hits[r.sample()] += 1
            assert abs(hits["h"] / trials - 0.9) < 0.03, order
