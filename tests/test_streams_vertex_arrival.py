"""Tests for the vertex-arrival stream and the adjacency-list estimator."""

from __future__ import annotations

import random

import pytest

from repro.analysis.variance import empirical_moments
from repro.baselines.adjlist_mvv import AdjListMVVEstimator
from repro.errors import ParameterError, StreamError
from repro.generators import barabasi_albert_graph, cycle_graph, wheel_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream
from repro.streams.vertex_arrival import VertexArrivalStream


class TestVertexArrivalStream:
    def test_is_edge_stream(self, wheel10):
        stream = VertexArrivalStream.from_graph(wheel10)
        assert len(stream) == wheel10.num_edges
        assert sorted(stream) == wheel10.edge_list()

    def test_rejects_bad_order(self, triangle):
        with pytest.raises(StreamError, match="permutation"):
            VertexArrivalStream(triangle, [0, 1])

    def test_each_edge_once(self, grid4):
        stream = VertexArrivalStream.from_graph(grid4, rng=random.Random(1))
        edges = list(stream)
        assert len(edges) == len(set(edges)) == grid4.num_edges

    def test_batches_group_by_later_endpoint(self, triangle):
        stream = VertexArrivalStream(triangle, [2, 0, 1])
        batches = list(stream.batches())
        assert batches[0] == (2, [])
        assert batches[1] == (0, [2])
        assert sorted(batches[2][1]) == [0, 2]

    def test_batches_replayable(self, wheel10):
        stream = VertexArrivalStream.from_graph(wheel10, rng=random.Random(2))
        assert list(stream.batches()) == list(stream.batches())

    def test_arrival_order_copy(self, triangle):
        stream = VertexArrivalStream(triangle, [2, 0, 1])
        order = stream.arrival_order
        order.append(99)
        assert stream.arrival_order == [2, 0, 1]

    def test_edges_reveal_at_later_arrival(self, wheel10):
        stream = VertexArrivalStream.from_graph(wheel10, rng=random.Random(3))
        position = {v: i for i, v in enumerate(stream.arrival_order)}
        for v, earlier in stream.batches():
            for u in earlier:
                assert position[u] < position[v]


class TestAdjListMVV:
    def test_validation(self):
        with pytest.raises(ParameterError):
            AdjListMVVEstimator(reservoir_edges=0, rng=random.Random(0))

    def test_requires_vertex_arrival_stream(self, triangle):
        est = AdjListMVVEstimator(5, random.Random(0))
        with pytest.raises(StreamError, match="VertexArrivalStream"):
            est.estimate(InMemoryEdgeStream.from_graph(triangle))

    def test_full_reservoir_is_exact(self):
        # k >= m: every edge is retained, every triangle witnessed at p=1.
        graph = wheel_graph(30)
        stream = VertexArrivalStream.from_graph(graph, rng=random.Random(1))
        est = AdjListMVVEstimator(reservoir_edges=graph.num_edges, rng=random.Random(2))
        assert est.estimate(stream).estimate == count_triangles(graph)

    def test_triangle_free(self):
        graph = cycle_graph(30)
        stream = VertexArrivalStream.from_graph(graph, rng=random.Random(1))
        est = AdjListMVVEstimator(10, random.Random(2))
        assert est.estimate(stream).estimate == 0.0

    def test_one_pass_and_space(self):
        graph = wheel_graph(50)
        stream = VertexArrivalStream.from_graph(graph, rng=random.Random(1))
        result = AdjListMVVEstimator(20, random.Random(2)).estimate(stream)
        assert result.passes_used == 1
        assert result.space_words_peak == 2 * 20

    def test_unbiased(self):
        graph = barabasi_albert_graph(120, 5, random.Random(4))
        t = count_triangles(graph)
        stream = VertexArrivalStream.from_graph(graph, rng=random.Random(5))
        estimates = [
            AdjListMVVEstimator(60, random.Random(seed)).estimate(stream).estimate
            for seed in range(40)
        ]
        moments = empirical_moments(estimates)
        se = moments.std / (len(estimates) ** 0.5)
        assert abs(moments.mean - t) <= 4 * se + 0.05 * t

    def test_deterministic(self):
        graph = wheel_graph(40)
        stream = VertexArrivalStream.from_graph(graph, rng=random.Random(1))
        a = AdjListMVVEstimator(15, random.Random(7)).estimate(stream)
        b = AdjListMVVEstimator(15, random.Random(7)).estimate(stream)
        assert a.estimate == b.estimate
