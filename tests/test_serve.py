"""Tests for the estimate-serving layer (:mod:`repro.serve`).

Three strata, matching the layer's own structure:

* **program parity** - :func:`~repro.core.driver.estimate_program` /
  :func:`~repro.core.driver.run_estimate_program` reproduce the solo
  driver bit-for-bit (estimate, trajectory, accounting, final root-RNG
  state) across speculation settings;
* **shared scheduler** - N concurrent jobs on one
  :class:`~repro.serve.scheduler.SweepScheduler` each match their solo
  run exactly while the tape performs strictly fewer physical sweeps
  than the solo runs combined, and a sweep failure kills exactly the
  co-riding jobs (shared fate) while the scheduler survives;
* **daemon end-to-end** - unix-socket and HTTP transports, result
  caching with zero extra sweeps, cleanly-cold restarts, and typed
  error responses.
"""

from __future__ import annotations

import json
import random
import socket
import threading
from typing import Iterator, List

import pytest

import repro.core.driver as driver_module
from repro.core.driver import (
    EstimatorConfig,
    TriangleCountEstimator,
    run_estimate_program,
)
from repro.core.engine import engine_overrides
from repro.generators import barabasi_albert_graph, wheel_graph
from repro.io import write_edgelist
from repro.serve import SweepScheduler
from repro.serve.daemon import background_server
from repro.serve.jobs import Job
from repro.serve.protocol import request_http, request_unix, root_rng_digest
from repro.serve.scheduler import next_job_id
from repro.streams import InMemoryEdgeStream
from repro.streams.base import EdgeStream
from repro.streams.multipass import OwnerLedger
from repro.types import Edge


KAPPA = 3


def _ba_edges() -> List[Edge]:
    return barabasi_albert_graph(150, 5, random.Random(1)).edge_list()


def _solo_with_root(edges, kappa, config):
    """Solo reference run that also captures the final root-RNG state."""
    roots = []
    real_make_rng = driver_module.make_rng

    def recording_make_rng(seed):
        rng = real_make_rng(seed)
        roots.append(rng)
        return rng

    with pytest.MonkeyPatch.context() as patch:
        patch.setattr(driver_module, "make_rng", recording_make_rng)
        result = TriangleCountEstimator(config).estimate(
            InMemoryEdgeStream(edges), kappa=kappa
        )
    return result, roots[-1].getstate()


def _trajectory(result):
    return [
        (
            r.t_guess,
            r.median_estimate,
            r.accepted,
            tuple(run.estimate for run in r.runs),
        )
        for r in result.rounds
    ]


def _accounting(result):
    return (
        result.passes_total,
        result.sweeps_total,
        result.sweeps_wasted,
        result.passes_wasted,
        result.space_words_peak,
    )


def _assert_outcome_matches_solo(outcome, solo_result, solo_root_state):
    assert outcome.result.estimate == solo_result.estimate
    assert _trajectory(outcome.result) == _trajectory(solo_result)
    assert _accounting(outcome.result) == _accounting(solo_result)
    assert outcome.root_state == solo_root_state


class TestOwnerLedger:
    def test_report_splits_by_prefix(self):
        ledger = OwnerLedger()
        ledger.record(["a/w0.round"])
        ledger.record(["a/w0.speculative1", "b/w0.round"])
        ledger.record(["b/w1.round"])
        ledger.discard("a/w0.speculative1")

        a = ledger.report("a/")
        assert (a.rode, a.committed, a.wasted, a.shared) == (2, 1, 1, 1)
        b = ledger.report("b/")
        assert (b.rode, b.committed, b.wasted, b.shared) == (2, 2, 0, 1)

    def test_sweep_totals(self):
        ledger = OwnerLedger()
        ledger.record(["a/w0.round", "b/w0.round"])
        ledger.record(["b/w0.speculative1"])
        ledger.discard("b/w0.speculative1")
        assert ledger.sweeps_recorded == 2
        # A sweep is wasted only when *every* owner discarded it.
        assert ledger.sweeps_wasted == 1
        assert ledger.sweeps_committed == 1


class TestEstimateProgramParity:
    """The program path is bit-identical to the solo driver."""

    @pytest.mark.parametrize(
        "speculative,depth",
        [(False, None), (True, 2), (True, 4)],
        ids=["no-spec", "depth2", "depth4"],
    )
    @pytest.mark.parametrize(
        "seed,repetitions", [(3, 3), (11, 5)], ids=["s3r3", "s11r5"]
    )
    def test_matches_solo(self, speculative, depth, seed, repetitions):
        edges = wheel_graph(60).edge_list()
        config = EstimatorConfig(seed=seed, repetitions=repetitions)
        with engine_overrides(speculative=speculative, speculate_depth=depth):
            solo_result, solo_root = _solo_with_root(edges, KAPPA, config)
            outcome = run_estimate_program(
                InMemoryEdgeStream(edges), KAPPA, config
            )
        _assert_outcome_matches_solo(outcome, solo_result, solo_root)

    def test_empty_stream(self):
        outcome = run_estimate_program(
            InMemoryEdgeStream([]), KAPPA, EstimatorConfig(seed=5)
        )
        assert outcome.result.estimate == 0.0
        assert outcome.result.passes_total == 0


class _SweepFailingStream(EdgeStream):
    """Delegates to a fixed tape; exactly one physical pass dies mid-way."""

    def __init__(self, edges, fail_pass: int, fail_after: int = 10) -> None:
        self._edges = list(edges)
        self._fail_pass = fail_pass
        self._passes = 0

        self._fail_after = fail_after

    def __iter__(self) -> Iterator[Edge]:
        self._passes += 1
        if self._passes == self._fail_pass:
            return self._failing_pass()
        return iter(self._edges)

    def _failing_pass(self) -> Iterator[Edge]:
        for i, e in enumerate(self._edges):
            if i >= self._fail_after:
                raise IOError("injected sweep failure")
            yield e

    def __len__(self) -> int:
        return len(self._edges)


def _job_for(stream, kappa, config) -> Job:
    job_id = next_job_id()
    return Job(
        job_id,
        driver_module.estimate_program(
            stream, kappa, config, owner_prefix=f"{job_id}/"
        ),
    )


class TestSweepScheduler:
    def test_concurrent_jobs_bit_identical_and_cheaper_than_solo(self):
        edges = _ba_edges()
        configs = [
            EstimatorConfig(seed=3, repetitions=3),
            EstimatorConfig(seed=9, repetitions=3),
            EstimatorConfig(seed=21, repetitions=5),
        ]
        solos = [
            _solo_with_root(edges, KAPPA, config) for config in configs
        ]

        shared = SweepScheduler(InMemoryEdgeStream(edges))
        jobs = [
            _job_for(shared.stream, KAPPA, config) for config in configs
        ]
        # Submit before starting: all three are admitted at the first
        # step boundary, so they co-ride from sweep one.
        for job in jobs:
            shared.submit(job)
        shared.start()
        try:
            for job in jobs:
                assert job.wait(120.0)
        finally:
            shared.shutdown()

        solo_sweeps = 0
        for job, (solo_result, solo_root) in zip(jobs, solos):
            assert job.error is None
            _assert_outcome_matches_solo(job.outcome, solo_result, solo_root)
            solo_sweeps += solo_result.sweeps_total
            # Every job actually shared traversals with another job.
            assert job.accounting.sweeps_shared > 0
            assert job.accounting.sweeps_physical <= solo_result.sweeps_total
        assert shared.sweeps_physical < solo_sweeps
        assert shared.jobs_completed == len(jobs)

    def test_sweep_failure_is_shared_fate_but_scheduler_survives(self):
        edges = wheel_graph(60).edge_list()
        # Admission costs one stats pass per job (passes 1-2), so the
        # first *shared* traversal - both jobs riding - is pass 3.
        stream = _SweepFailingStream(edges, fail_pass=3)
        shared = SweepScheduler(stream)
        riders = [
            _job_for(stream, KAPPA, EstimatorConfig(seed=3, repetitions=3)),
            _job_for(stream, KAPPA, EstimatorConfig(seed=9, repetitions=3)),
        ]
        for job in riders:
            shared.submit(job)
        shared.start()
        try:
            for job in riders:
                assert job.wait(60.0)
            # Both riders died with the traversal...
            for job in riders:
                assert isinstance(job.error, IOError)
            assert shared.jobs_failed == 2

            # ...but the scheduler and tape keep serving: the failing
            # pass is spent, so a later job completes and still matches
            # its solo run bit-for-bit.
            config = EstimatorConfig(seed=5, repetitions=3)
            solo_result, solo_root = _solo_with_root(edges, KAPPA, config)
            survivor = _job_for(stream, KAPPA, config)
            shared.submit(survivor)
            assert survivor.wait(60.0)
        finally:
            shared.shutdown()
        assert survivor.error is None
        _assert_outcome_matches_solo(survivor.outcome, solo_result, solo_root)


@pytest.fixture
def ba_file(tmp_path):
    path = tmp_path / "ba.txt"
    write_edgelist(barabasi_albert_graph(150, 5, random.Random(1)), path)
    return str(path)


def _estimate_request(path, seed, repetitions=3):
    return {
        "op": "estimate",
        "path": path,
        "kappa": KAPPA,
        "config": {"seed": seed, "repetitions": repetitions},
    }


def _assert_document_matches_solo(document, solo_result, solo_root):
    assert document["ok"] is True
    assert document["estimate"] == solo_result.estimate
    assert [
        (r["t_guess"], r["median_estimate"], r["accepted"], tuple(r["runs"]))
        for r in document["rounds"]
    ] == _trajectory(solo_result)
    assert document["passes_total"] == solo_result.passes_total
    assert document["sweeps_total"] == solo_result.sweeps_total
    assert document["root_rng_sha256"] == root_rng_digest(solo_root)


class TestDaemon:
    def test_concurrent_requests_share_sweeps_and_match_solo(
        self, ba_file, tmp_path
    ):
        edges = _ba_edges()
        seeds = (3, 9)
        solos = {
            seed: _solo_with_root(
                edges, KAPPA, EstimatorConfig(seed=seed, repetitions=3)
            )
            for seed in seeds
        }
        sock = str(tmp_path / "serve.sock")
        responses = {}
        with background_server(socket_path=sock, batch_window=0.25) as server:
            threads = [
                threading.Thread(
                    target=lambda s=seed: responses.__setitem__(
                        s, request_unix(sock, _estimate_request(ba_file, s))
                    )
                )
                for seed in seeds
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120.0)
            stats = request_unix(sock, {"op": "stats"})

        for seed in seeds:
            _assert_document_matches_solo(responses[seed], *solos[seed])
            assert responses[seed]["cached"] is False
        solo_sweeps = sum(solos[s][0].sweeps_total for s in seeds)
        (tape,) = stats["tapes"]
        assert tape["jobs_completed"] == 2
        assert tape["sweeps_physical"] < solo_sweeps
        # With both requests inside the batch window they co-ride from
        # sweep one, so each job's shared count is positive.
        assert all(
            responses[s]["accounting"]["sweeps_shared"] > 0 for s in seeds
        )

    def test_repeat_request_is_cached_with_zero_new_sweeps(
        self, ba_file, tmp_path
    ):
        sock = str(tmp_path / "serve.sock")
        with background_server(socket_path=sock, batch_window=0.0):
            first = request_unix(sock, _estimate_request(ba_file, seed=7))
            before = request_unix(sock, {"op": "stats"})
            second = request_unix(sock, _estimate_request(ba_file, seed=7))
            after = request_unix(sock, {"op": "stats"})

        assert first["cached"] is False
        assert second["cached"] is True
        # The cached response is the same solo-equivalent result, minus
        # the per-job fields (a hit served zero sweeps).
        stripped = {
            k: v for k, v in first.items() if k not in ("cached", "job", "accounting")
        }
        assert {k: v for k, v in second.items() if k != "cached"} == stripped
        assert "accounting" not in second
        (tape_before,) = before["tapes"]
        (tape_after,) = after["tapes"]
        assert tape_after["sweeps_physical"] == tape_before["sweeps_physical"]
        assert after["cache"]["hits"] == 1

    def test_restart_is_cleanly_cold(self, ba_file, tmp_path):
        sock = str(tmp_path / "serve.sock")
        with background_server(socket_path=sock, batch_window=0.0):
            first = request_unix(sock, _estimate_request(ba_file, seed=7))
            warmed = request_unix(sock, _estimate_request(ba_file, seed=7))
        assert warmed["cached"] is True

        sock2 = str(tmp_path / "serve2.sock")
        with background_server(socket_path=sock2, batch_window=0.0):
            fresh = request_unix(sock2, _estimate_request(ba_file, seed=7))
        # The cache is in-memory only: a restarted daemon recomputes...
        assert fresh["cached"] is False
        # ...to the identical result.
        assert fresh["estimate"] == first["estimate"]
        assert fresh["root_rng_sha256"] == first["root_rng_sha256"]

    def test_http_transport(self, ba_file):
        edges = _ba_edges()
        config = EstimatorConfig(seed=13, repetitions=3)
        solo_result, solo_root = _solo_with_root(edges, KAPPA, config)
        with background_server(port=0, batch_window=0.0) as server:
            assert request_http(server.port, {"op": "ping"}) == {
                "ok": True,
                "pong": True,
            }
            document = request_http(
                server.port, _estimate_request(ba_file, seed=13)
            )
        _assert_document_matches_solo(document, solo_result, solo_root)

    def test_error_responses_are_typed(self, ba_file, tmp_path):
        sock = str(tmp_path / "serve.sock")
        with background_server(socket_path=sock, batch_window=0.0):
            missing = request_unix(
                sock, _estimate_request(str(tmp_path / "nope.txt"), seed=1)
            )
            assert missing["ok"] is False
            assert "nope.txt" in missing["error"]["message"]

            bad_field = request_unix(
                sock,
                {
                    "op": "estimate",
                    "path": ba_file,
                    "kappa": KAPPA,
                    "config": {"seed": 1, "workers": 4},
                },
            )
            assert bad_field["ok"] is False
            assert bad_field["error"]["type"] == "ProtocolError"
            assert "workers" in bad_field["error"]["message"]

            bad_op = request_unix(sock, {"op": "frobnicate"})
            assert bad_op["ok"] is False
            assert bad_op["error"]["type"] == "ProtocolError"

            # Malformed JSON straight down the socket.
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
                raw.settimeout(30.0)
                raw.connect(sock)
                raw.sendall(b"this is not json\n")
                reply = json.loads(raw.recv(65536))
            assert reply["ok"] is False
            assert reply["error"]["type"] == "ProtocolError"

    def test_shutdown_request_stops_the_server(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        with background_server(socket_path=sock, batch_window=0.0):
            reply = request_unix(sock, {"op": "shutdown"})
        assert reply == {"ok": True, "stopping": True}
